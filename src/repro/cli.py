"""Command-line interface: ``python -m repro <command>``.

Small operational front end over the library for users who want the
pipeline without writing Python:

* ``python -m repro stats``                      — FU netlist statistics
* ``python -m repro sta --fu int_add``           — corner STA sweep
* ``python -m repro characterize --fu fp_add``   — DTA delay summary
* ``python -m repro campaign --fu int_add fp_mul --workers 4``
                                                 — batched multi-FU DTA
* ``python -m repro train --fu int_add -o m.pkl``— train + save a model
* ``python -m repro predict -m m.pkl --fu int_add --speedup 0.1``
                                                 — TER estimates
* ``python -m repro models publish -m m.pkl --fu int_add --registry r/``
                                                 — registry operations
* ``python -m repro serve --registry r/``        — HTTP prediction server
* ``python -m repro store gc --max-mb 256``      — trace-store eviction

Every pipeline subcommand parses into the typed specs of
:mod:`repro.api` and executes through the :class:`~repro.api.Workspace`
facade.  ``--config run.toml`` (TOML or JSON, see
``CampaignSpec.from_file``) loads a declarative spec first; individual
flags override single fields of it, and the effective resolved spec is
echoed back so every run is reproducible from its log line alone.
Shared flag groups (corners, stream, sim backend, shard grid) are
declared once by the ``_add_*_args`` helpers instead of per
subcommand, so the subparsers can never drift apart.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional

from .api import (
    CampaignSpec,
    CornerSpec,
    PredictSpec,
    ServeSpec,
    SpecError,
    TrainSpec,
    Workspace,
)
from .circuits import PAPER_UNITS
from .core import load_model
from .flow import implement, open_trace_store
from .sim import available_backends

_CONFIG_HELP = ("declarative spec file (.toml or .json); individual "
                "flags override single fields of it")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


# -- shared flag groups (single source of truth across subcommands) -----------


def _add_config_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", metavar="FILE", help=_CONFIG_HELP)


def _add_corner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--voltages", type=float, nargs="+", default=None,
                        help="corner-grid voltage points "
                             "(default 0.81 0.90 1.00)")
    parser.add_argument("--temperatures", type=float, nargs="+",
                        default=None,
                        help="corner-grid temperature points "
                             "(default 0 50 100)")


def _add_stream_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cycles", type=_positive_int, default=None,
                        help="workload length in cycles")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed")


def _add_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        choices=available_backends(),
                        help="simulation backend (choices list the "
                             "registered names)")
    parser.add_argument("--chunk-cycles", type=_positive_int, default=None,
                        help="cycle-axis working-set chunk for backends "
                             "that support it (never affects results)")


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="process-pool width for cache misses")
    parser.add_argument("--shard-cycles", type=_positive_int, default=None,
                        help="cycle-axis shard pitch for single jobs "
                             "(default: auto-sized from --workers and any "
                             "persisted throughput history)")
    parser.add_argument("--shard-corners", type=_positive_int, default=None,
                        help="corner-axis shard pitch for single jobs "
                             "(default: auto)")
    parser.add_argument("--no-adaptive-history", action="store_const",
                        const=True, default=None,
                        help="plan shard grids statically, ignoring the "
                             "trace store's throughput history")
    parser.add_argument("--threads", type=_positive_int, default=None,
                        help="in-worker thread count for the arrival "
                             "kernel on backends that support it "
                             "(never affects results)")
    parser.add_argument("--no-persistent-pool", action="store_const",
                        const=True, default=None,
                        help="run multi-worker campaigns on a per-batch "
                             "process pool instead of the persistent "
                             "warm worker pool")


# -- flag -> spec override application ----------------------------------------


def _apply_corners(spec, args):
    if args.voltages is None and args.temperatures is None:
        return spec
    base = spec.corners
    if base.pairs and (args.voltages is None or args.temperatures is None):
        # a lone axis flag cannot partially override an explicit pair
        # list; silently filling the other axis with defaults would
        # simulate corners the user never asked for
        raise SpecError(
            "the config defines explicit corner pairs; overriding from "
            "flags requires both --voltages and --temperatures")
    voltages = (tuple(args.voltages) if args.voltages is not None
                else base.voltages)
    temperatures = (tuple(args.temperatures)
                    if args.temperatures is not None
                    else base.temperatures)
    # flags always describe a grid; they replace an explicit pair list
    return spec.replace(corners=CornerSpec(
        voltages=voltages, temperatures=temperatures, pairs=()))


def _apply_stream(spec, args, field: str = "stream"):
    stream = getattr(spec, field)
    changes = {}
    if args.cycles is not None:
        changes["cycles"] = args.cycles
    if args.seed is not None:
        changes["seed"] = args.seed
    return spec.replace(**{field: stream.replace(**changes)}) \
        if changes else spec


def _apply_sim(spec, args):
    changes = {}
    if args.backend is not None:
        changes["backend"] = args.backend
    if args.chunk_cycles is not None:
        changes["chunk_cycles"] = args.chunk_cycles
    return spec.replace(sim=spec.sim.replace(**changes)) \
        if changes else spec


def _apply_shards(spec, args):
    changes = {}
    if args.workers is not None:
        changes["workers"] = args.workers
    if args.shard_cycles is not None:
        changes["shard_cycles"] = args.shard_cycles
    if args.shard_corners is not None:
        changes["shard_corners"] = args.shard_corners
    if args.no_adaptive_history:
        changes["adaptive_history"] = False
    if args.threads is not None:
        changes["threads"] = args.threads
    if args.no_persistent_pool:
        changes["persistent"] = False
    return spec.replace(shards=spec.shards.replace(**changes)) \
        if changes else spec


def _base_spec(cls, args):
    if getattr(args, "config", None):
        return cls.from_file(args.config)
    return cls()


def campaign_spec(args) -> CampaignSpec:
    """Effective :class:`CampaignSpec` for ``repro campaign`` args."""
    spec = _base_spec(CampaignSpec, args)
    if args.fu:
        spec = spec.replace(fus=tuple(args.fu))
    spec = _apply_stream(spec, args)
    spec = _apply_corners(spec, args)
    spec = _apply_sim(spec, args)
    spec = _apply_shards(spec, args)
    if args.no_cache:
        spec = spec.replace(cache=False)
    return spec


def characterize_spec(args) -> CampaignSpec:
    """Effective single-FU :class:`CampaignSpec` for ``characterize``."""
    spec = _base_spec(CampaignSpec, args)
    if args.fu:
        spec = spec.replace(fus=(args.fu,))
    spec = _apply_stream(spec, args)
    spec = _apply_corners(spec, args)
    spec = _apply_sim(spec, args)
    spec = _apply_shards(spec, args)
    if len(spec.resolved_fus()) != 1:
        raise SpecError("characterize needs exactly one FU "
                        "(--fu or a single-FU config)")
    return spec


def train_spec(args) -> TrainSpec:
    """Effective :class:`TrainSpec` for ``repro train`` args."""
    spec = _base_spec(TrainSpec, args)
    if args.fu:
        spec = spec.replace(fu=args.fu)
    spec = _apply_stream(spec, args)
    spec = _apply_corners(spec, args)
    spec = _apply_sim(spec, args)
    spec = _apply_shards(spec, args)
    if args.max_rows is not None:
        spec = spec.replace(max_rows=args.max_rows)
    if args.output:
        spec = spec.replace(output=args.output)
    if args.publish:
        spec = spec.replace(publish=True, registry=args.publish)
    if not spec.fu:
        raise SpecError("train needs an FU (--fu or [train] fu in the "
                        "config)")
    return spec


def predict_spec(args) -> PredictSpec:
    """Effective :class:`PredictSpec` for ``repro predict`` args."""
    spec = _base_spec(PredictSpec, args)
    if args.fu:
        spec = spec.replace(fu=args.fu)
    if args.model:
        spec = spec.replace(model=args.model)
    if args.speedup is not None:
        spec = spec.replace(speedup=args.speedup)
    spec = _apply_stream(spec, args)
    spec = _apply_corners(spec, args)
    spec = _apply_sim(spec, args)
    spec = _apply_shards(spec, args)
    if not spec.fu:
        raise SpecError("predict needs an FU (--fu or [predict] fu in "
                        "the config)")
    return spec


def serve_spec(args) -> ServeSpec:
    """Effective :class:`ServeSpec` for ``repro serve`` args."""
    spec = _base_spec(ServeSpec, args)
    changes = {}
    if args.registry is not None:
        changes["registry"] = args.registry
    if args.host is not None:
        changes["host"] = args.host
    if args.port is not None:
        changes["port"] = args.port
    if args.kind is not None:
        changes["kind"] = args.kind
    if args.batch_window_ms is not None:
        changes["batch_window_ms"] = args.batch_window_ms
    if args.max_batch is not None:
        changes["max_batch"] = args.max_batch
    if args.max_queue is not None:
        changes["max_queue"] = args.max_queue
    if args.default_deadline_ms is not None:
        changes["default_deadline_ms"] = args.default_deadline_ms
    if args.workers is not None:
        changes["workers"] = args.workers
    if args.request_log is not None:
        changes["request_log"] = args.request_log
    if args.no_fallback:
        changes["fallback"] = False
    if args.verbose:
        changes["verbose"] = True
    if changes:
        spec = spec.replace(**changes)
    return _apply_sim(spec, args)


def _echo_spec(kind: str, spec) -> None:
    print(f"spec[{kind}] {spec.to_json()}")


# -- commands -----------------------------------------------------------------


def cmd_stats(args) -> int:
    for name in (args.fu and [args.fu]) or PAPER_UNITS:
        fu = Workspace().functional_unit(name)
        print(f"{name}: {fu.stats()}  — {fu.description}")
    return 0


def cmd_sta(args) -> int:
    corners = _apply_corners(CampaignSpec(), args).corners
    conditions = corners.conditions()
    design = implement(args.fu, conditions)
    print(f"static critical-path delay of {args.fu} (ps):")
    for cond in conditions:
        print(f"  {cond.label}: {design.static_delay(cond):.1f}")
    return 0


def cmd_characterize(args) -> int:
    spec = characterize_spec(args)
    _echo_spec("characterize", spec)
    with Workspace() as workspace:
        result = workspace.characterize(spec)
    trace = result.traces[0]
    fu_name = spec.resolved_fus()[0]
    print(f"dynamic delay of {fu_name} over {spec.stream.cycles} "
          f"random cycles (ps):")
    for k, cond in enumerate(spec.corners.conditions()):
        d = trace.delays[k]
        print(f"  {cond.label}: mean {d.mean():8.1f}  max {d.max():8.1f}")
    return 0


def cmd_campaign(args) -> int:
    spec = campaign_spec(args)
    _echo_spec("campaign", spec)
    with Workspace() as workspace:
        result = workspace.characterize(spec)
    stats = result.stats
    summary = f"[{stats.hits} cached, {stats.misses} simulated"
    if stats.misses:
        summary += (f" in {stats.wall_seconds:.2f}s wall / "
                    f"{stats.sim_seconds:.2f}s sim across "
                    f"{stats.total_shards} shard(s)")
        if stats.packed:
            summary += ", cross-job packed"
    if stats.resumed_shards:
        summary += f", {stats.resumed_shards} shard(s) resumed"
    summary += "]"
    print(f"campaign: {len(result.jobs)} job(s), "
          f"{spec.corners.n_corners} corner(s), "
          f"backend={spec.sim.backend_name()}, "
          f"workers={spec.shards.workers} {summary}")
    for i, (job, trace) in enumerate(zip(result.jobs, result.traces)):
        d = trace.delays
        line = (f"  {job.fu.name:8s} {trace.n_cycles:6d} cycles  "
                f"mean {d.mean():8.1f} ps  worst {d.max():8.1f} ps")
        if i in stats.job_shards:
            line += (f"  [{stats.job_shards[i]} shard(s), "
                     f"{stats.job_seconds[i]:.2f}s sim")
            cps = stats.job_cycles_per_s(i)
            if cps is not None:  # throughput regressions visible here
                line += f", {cps:,.0f} cyc/s"
            line += "]"
        else:
            line += "  [cached]"
        print(line)
    return 0


def cmd_train(args) -> int:
    spec = train_spec(args)
    if not spec.output:
        print("train requires -o/--output (or [train] output in the "
              "config)", file=sys.stderr)
        return 2
    _echo_spec("train", spec)
    with Workspace() as workspace:
        result = workspace.train(spec)
    print(f"trained on {result.n_rows} rows; saved to {result.path}")
    if result.record is not None:
        print(f"published {result.record.model_id} to {spec.registry}")
    return 0


def cmd_predict(args) -> int:
    spec = predict_spec(args)
    if not spec.model:
        print("predict requires -m/--model (or [predict] model in the "
              "config)", file=sys.stderr)
        return 2
    _echo_spec("predict", spec)
    with Workspace() as workspace:
        result = workspace.predict(spec)
    print(f"estimated TER at +{spec.speedup:.0%} overclock:")
    for cond, ter in result.ters.items():
        print(f"  {cond.label}: {ter*100:6.2f}%")
    return 0


# -- serving ------------------------------------------------------------------


def cmd_serve(args) -> int:
    spec = serve_spec(args)
    _echo_spec("serve", spec)
    workspace = Workspace()
    if args.replay is not None:
        report = workspace.replay(spec, args.replay)
        print(f"repro serve --replay {args.replay}: {report.summary()}")
        for mismatch in report.mismatches:
            print(f"  {mismatch.describe()}")
        return 0 if report.ok else 1
    server = workspace.serve(spec)
    engine = server.engine
    host, port = server.address
    published = 0 if engine.registry is None else len(engine.registry)
    print(f"repro serve on http://{host}:{port}  "
          f"[registry={spec.registry or '-'}, {published} model(s), "
          f"workers={spec.workers}, "
          f"fallback={spec.sim.backend_name() if spec.fallback else 'off'}, "
          f"window={spec.batch_window_ms}ms, max_batch={spec.max_batch}"
          f"{', log=' + spec.request_log if spec.request_log else ''}]",
          flush=True)

    def _sigterm(signum, frame):
        raise KeyboardInterrupt  # route SIGTERM through the graceful path

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
    return 0


def cmd_models(args) -> int:
    from .serve import MODEL_KINDS, open_model_registry

    where = args.url or args.registry
    if where is None:
        print("models requires --registry DIR or --url URL",
              file=sys.stderr)
        return 2
    registry = open_model_registry(where)
    if args.action == "list":
        records = registry.list_models()
        if not records:
            print(f"no models published in {where}")
            return 0
        for r in records:
            print(f"  {r.model_id:24s} key={r.key} "
                  f"{r.size_bytes / 1e3:8.1f} kB  {r.created}")
        return 0
    if args.action == "publish":
        if not args.model:
            print("models publish requires -m/--model", file=sys.stderr)
            return 2
        if not args.fu:
            print("models publish requires --fu", file=sys.stderr)
            return 2
        if args.kind not in MODEL_KINDS:
            print(f"unknown kind {args.kind!r}; available: "
                  f"{', '.join(MODEL_KINDS)}", file=sys.stderr)
            return 2
        model, metadata = load_model(args.model)
        record = registry.publish(model, fu=args.fu, kind=args.kind,
                                  metadata=metadata)
        print(f"published {record.model_id} (key={record.key})")
        return 0
    # gc
    report = registry.gc(keep=args.keep, dry_run=args.dry_run)
    prefix = "would have " if args.dry_run else ""
    print(f"registry gc: {prefix}{report.summary()}")
    return 0


def cmd_store_serve(args) -> int:
    """Run the remote store service (``repro store serve``)."""
    from .remote import StoreService

    if args.root is None:
        print("store serve requires --root DIR", file=sys.stderr)
        return 2
    service = StoreService(args.root, host=args.host, port=args.port)
    host, port = service.address
    print(f"repro store serve on http://{host}:{port}  "
          f"[root={service.root}, {len(service.store.entries())} trace(s), "
          f"{len(service.registry)} model(s)]", flush=True)

    def _sigterm(signum, frame):
        raise KeyboardInterrupt  # route SIGTERM through the graceful path

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        service.close()
    return 0


def cmd_store(args) -> int:
    if args.action == "serve":
        return cmd_store_serve(args)
    store = open_trace_store(args.url or args.dir)
    if args.action == "list":
        entries = store.entries()
        if not entries:
            print(f"trace store {store.root} is empty")
        else:
            total = store.size_bytes()
            print(f"trace store {store.root}: {len(entries)} entr(y/ies), "
                  f"{total / 1e6:.2f} MB")
            if isinstance(store.root, Path):
                quarantined = len(list(store.root.glob("*.corrupt-*")))
            else:  # remote store: the service counts its own files
                quarantined = int(store.stats().get("quarantined", 0))
            if quarantined:
                print(f"  ({quarantined} quarantined corrupt file(s) — "
                      f"inspect or delete *.corrupt-*)")
            for key, entry in sorted(entries.items(),
                                     key=lambda kv: kv[1].get("created", "")):
                print(f"  {key}  {entry['fu']:8s} {entry['stream']:28s} "
                      f"{entry['n_conditions']:3d}x{entry['n_cycles']:<7d} "
                      f"{entry.get('created', '')}")
        history = store.throughput_history()
        if history:
            print(f"throughput history ({len(history)} entr(y/ies), feeds "
                  f"the adaptive shard planner):")
            for key, entry in sorted(history.items()):
                cps = entry.get("corner_cycles_per_s") \
                    if isinstance(entry, dict) else None
                samples = entry.get("samples", "?") \
                    if isinstance(entry, dict) else "?"
                cps_text = (f"{cps:,.0f} corner-cyc/s"
                            if isinstance(cps, (int, float)) else "corrupt")
                print(f"  {key:32s} {cps_text}  ({samples} sample(s))")
        return 0
    # gc
    if args.drop_history:
        if args.dry_run:
            n = len(store.throughput_history())
            print(f"store gc: would have dropped {n} throughput-history "
                  f"entr(y/ies)")
        else:
            dropped = store.clear_throughput()
            print(f"store gc: dropped {dropped} throughput-history "
                  f"entr(y/ies)")
    max_bytes = None if args.max_mb is None else int(args.max_mb * 1e6)
    report = store.gc(max_bytes=max_bytes, dry_run=args.dry_run)
    prefix = "would have " if args.dry_run else ""
    print(f"store gc: {prefix}{report.summary()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TEVoT reproduction pipeline CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="FU netlist statistics")
    p.add_argument("--fu", choices=PAPER_UNITS)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("sta", help="per-corner static timing")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    _add_corner_args(p)
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("characterize", help="DTA delay summary")
    p.add_argument("--fu", choices=PAPER_UNITS)
    _add_config_arg(p)
    _add_stream_args(p)
    _add_shard_args(p)
    _add_sim_args(p)
    _add_corner_args(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("campaign",
                       help="batched DTA over several FUs (process pool)")
    p.add_argument("--fu", nargs="+", default=None, choices=PAPER_UNITS)
    _add_config_arg(p)
    _add_stream_args(p)
    _add_shard_args(p)
    _add_sim_args(p)
    p.add_argument("--no-cache", action="store_true",
                   help="skip the trace store entirely")
    _add_corner_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("train", help="train and save a TEVoT model")
    p.add_argument("--fu", choices=PAPER_UNITS)
    _add_config_arg(p)
    _add_stream_args(p)
    _add_shard_args(p)
    p.add_argument("--max-rows", type=_positive_int, default=None)
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--publish", metavar="REGISTRY_DIR",
                   help="also publish into a serving model registry")
    _add_sim_args(p)
    _add_corner_args(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="estimate TERs with a saved model")
    p.add_argument("-m", "--model", default=None)
    p.add_argument("--fu", choices=PAPER_UNITS)
    _add_config_arg(p)
    p.add_argument("--speedup", type=_nonnegative_float, default=None)
    _add_stream_args(p)
    _add_shard_args(p)
    _add_sim_args(p)
    _add_corner_args(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("serve", help="HTTP/JSON prediction server")
    _add_config_arg(p)
    p.add_argument("--registry", default=None,
                   help="model registry directory")
    p.add_argument("--host", default=None)
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (0 binds an ephemeral one)")
    p.add_argument("--kind", default=None,
                   help="published model kind to serve")
    p.add_argument("--batch-window-ms", type=_nonnegative_float,
                   default=None, help="micro-batch collection window")
    p.add_argument("--max-batch", type=_positive_int, default=None)
    p.add_argument("--max-queue", type=_positive_int, default=None,
                   help="bounded request-queue depth; arrivals past it "
                        "are shed with 429 + Retry-After")
    p.add_argument("--default-deadline-ms", type=_nonnegative_float,
                   default=None,
                   help="deadline budget for requests that carry none "
                        "(0 disables; expired requests answer 504)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="worker processes (>1 runs a prediction cluster)")
    p.add_argument("--request-log", default=None, metavar="FILE",
                   help="append every executed batch to this JSONL log")
    p.add_argument("--replay", default=None, metavar="LOG",
                   help="re-drive a recorded request log instead of "
                        "serving; exits non-zero on any response mismatch")
    p.add_argument("--no-fallback", action="store_true",
                   help="disable the gate-level simulation fallback")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    _add_sim_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("models", help="serving model registry operations")
    p.add_argument("action", choices=("list", "publish", "gc"))
    p.add_argument("--registry", default=None,
                   help="registry directory (or a store-service URL)")
    p.add_argument("--url", default=None, metavar="URL",
                   help="operate against a running store service "
                        "(http://host:port) instead of a directory")
    p.add_argument("-m", "--model", help="artifact to publish")
    p.add_argument("--fu", choices=PAPER_UNITS,
                   help="FU the published model belongs to")
    p.add_argument("--kind", default="tevot")
    p.add_argument("--keep", type=_positive_int, default=1,
                   help="gc: versions to keep per (FU, kind)")
    p.add_argument("--dry-run", action="store_true")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("store", help="characterization trace-store upkeep "
                                     "and the remote store service")
    p.add_argument("action", choices=("list", "gc", "serve"))
    p.add_argument("--dir", default=None,
                   help="store directory (default: REPRO_CACHE_DIR); "
                        "a http://host:port URL targets a store service")
    p.add_argument("--url", default=None, metavar="URL",
                   help="list/gc: operate against a running store "
                        "service (http://host:port)")
    p.add_argument("--max-mb", type=_nonnegative_float, default=None,
                   help="gc: evict oldest traces beyond this size budget")
    p.add_argument("--drop-history", action="store_true",
                   help="gc: also reset the adaptive shard planner's "
                        "throughput history")
    p.add_argument("--dry-run", action="store_true")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="serve: service root (traces under DIR/traces, "
                        "models under DIR/registry)")
    p.add_argument("--host", default="127.0.0.1",
                   help="serve: bind address")
    p.add_argument("--port", type=int, default=8730,
                   help="serve: TCP port (0 binds an ephemeral one)")
    p.set_defaults(func=cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
