"""Command-line interface: ``python -m repro <command>``.

Small operational front end over the library for users who want the
pipeline without writing Python:

* ``python -m repro stats``                      — FU netlist statistics
* ``python -m repro sta --fu int_add``           — corner STA sweep
* ``python -m repro characterize --fu fp_add``   — DTA delay summary
* ``python -m repro campaign --fu int_add fp_mul --workers 4``
                                                 — batched multi-FU DTA
* ``python -m repro train --fu int_add -o m.pkl``— train + save a model
* ``python -m repro predict -m m.pkl --fu int_add --speedup 0.1``
                                                 — TER estimates
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .circuits import PAPER_UNITS, build_functional_unit
from .core import TEVoT, build_training_set
from .flow import (
    DEFAULT_BACKEND,
    CampaignJob,
    CampaignRunner,
    characterize,
    error_free_clocks,
    implement,
)
from .sim import available_backends
from .timing import OperatingCondition, paper_corner_grid, sped_up_clock
from .workloads import stream_for_unit


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _condition_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--voltages", type=float, nargs="+",
                        default=[0.81, 0.90, 1.00])
    parser.add_argument("--temperatures", type=float, nargs="+",
                        default=[0.0, 50.0, 100.0])


def _conditions(args) -> List[OperatingCondition]:
    return [OperatingCondition(v, t)
            for v in args.voltages for t in args.temperatures]


def cmd_stats(args) -> int:
    for name in (args.fu and [args.fu]) or PAPER_UNITS:
        fu = build_functional_unit(name)
        print(f"{name}: {fu.stats()}  — {fu.description}")
    return 0


def cmd_sta(args) -> int:
    conditions = _conditions(args)
    design = implement(args.fu, conditions)
    print(f"static critical-path delay of {args.fu} (ps):")
    for cond in conditions:
        print(f"  {cond.label}: {design.static_delay(cond):.1f}")
    return 0


def cmd_characterize(args) -> int:
    conditions = _conditions(args)
    fu = build_functional_unit(args.fu)
    stream = stream_for_unit(args.fu, args.cycles, seed=args.seed)
    stream.name = f"cli_{args.fu}_{args.seed}"
    trace = characterize(fu, stream, conditions, backend=args.backend)
    print(f"dynamic delay of {args.fu} over {args.cycles} random cycles (ps):")
    for k, cond in enumerate(conditions):
        d = trace.delays[k]
        print(f"  {cond.label}: mean {d.mean():8.1f}  max {d.max():8.1f}")
    return 0


def cmd_campaign(args) -> int:
    conditions = _conditions(args)
    runner = CampaignRunner(backend=args.backend, n_workers=args.workers,
                            use_cache=not args.no_cache)
    jobs = []
    for name in args.fu:
        fu = build_functional_unit(name)
        stream = stream_for_unit(name, args.cycles, seed=args.seed)
        stream.name = f"cli_campaign_{name}_{args.seed}"
        jobs.append(CampaignJob(fu, stream, conditions))
    traces = runner.run(jobs)
    print(f"campaign: {len(jobs)} job(s), {len(conditions)} corner(s), "
          f"backend={args.backend}, workers={args.workers} "
          f"[{runner.stats.hits} cached, {runner.stats.misses} simulated]")
    for job, trace in zip(jobs, traces):
        d = trace.delays
        print(f"  {job.fu.name:8s} {trace.n_cycles:6d} cycles  "
              f"mean {d.mean():8.1f} ps  worst {d.max():8.1f} ps")
    return 0


def cmd_train(args) -> int:
    conditions = _conditions(args)
    fu = build_functional_unit(args.fu)
    stream = stream_for_unit(args.fu, args.cycles, seed=args.seed)
    stream.name = f"cli_train_{args.fu}_{args.seed}"
    trace = characterize(fu, stream, conditions)
    X, y = build_training_set(stream, conditions, trace.delays,
                              max_rows=args.max_rows)
    model = TEVoT().fit(X, y)
    model.save(args.output)
    print(f"trained on {X.shape[0]} rows; saved to {args.output}")
    return 0


def cmd_predict(args) -> int:
    conditions = _conditions(args)
    model = TEVoT.load(args.model)
    fu = build_functional_unit(args.fu)
    workload = stream_for_unit(args.fu, args.cycles, seed=args.seed)
    workload.name = f"cli_wl_{args.fu}_{args.seed}"
    trace = characterize(fu, workload, conditions)
    clocks = error_free_clocks(trace)
    print(f"estimated TER at +{args.speedup:.0%} overclock:")
    for cond in conditions:
        tclk = sped_up_clock(clocks[cond], args.speedup)
        ter = model.timing_error_rate(workload, cond, tclk)
        print(f"  {cond.label}: {ter*100:6.2f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TEVoT reproduction pipeline CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="FU netlist statistics")
    p.add_argument("--fu", choices=PAPER_UNITS)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("sta", help="per-corner static timing")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    _condition_args(p)
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("characterize", help="DTA delay summary")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    p.add_argument("--cycles", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default=DEFAULT_BACKEND,
                   choices=available_backends())
    _condition_args(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("campaign",
                       help="batched DTA over several FUs (process pool)")
    p.add_argument("--fu", nargs="+", default=list(PAPER_UNITS),
                   choices=PAPER_UNITS)
    p.add_argument("--cycles", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=_positive_int, default=1)
    p.add_argument("--backend", default=DEFAULT_BACKEND,
                   choices=available_backends())
    p.add_argument("--no-cache", action="store_true",
                   help="skip the trace store entirely")
    _condition_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("train", help="train and save a TEVoT model")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--max-rows", type=int, default=60_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    _condition_args(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="estimate TERs with a saved model")
    p.add_argument("-m", "--model", required=True)
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    p.add_argument("--speedup", type=float, default=0.10)
    p.add_argument("--cycles", type=int, default=500)
    p.add_argument("--seed", type=int, default=1)
    _condition_args(p)
    p.set_defaults(func=cmd_predict)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
