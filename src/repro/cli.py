"""Command-line interface: ``python -m repro <command>``.

Small operational front end over the library for users who want the
pipeline without writing Python:

* ``python -m repro stats``                      — FU netlist statistics
* ``python -m repro sta --fu int_add``           — corner STA sweep
* ``python -m repro characterize --fu fp_add``   — DTA delay summary
* ``python -m repro campaign --fu int_add fp_mul --workers 4``
                                                 — batched multi-FU DTA
* ``python -m repro train --fu int_add -o m.pkl``— train + save a model
* ``python -m repro predict -m m.pkl --fu int_add --speedup 0.1``
                                                 — TER estimates
* ``python -m repro models publish -m m.pkl --fu int_add --registry r/``
                                                 — registry operations
* ``python -m repro serve --registry r/``        — HTTP prediction server
* ``python -m repro store gc --max-mb 256``      — trace-store eviction
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .circuits import PAPER_UNITS, build_functional_unit
from .core import TEVoT, build_training_set, load_model
from .flow import (
    DEFAULT_BACKEND,
    CampaignJob,
    CampaignRunner,
    TraceStore,
    error_free_clocks,
    implement,
)
from .sim import available_backends
from .timing import OperatingCondition, paper_corner_grid, sped_up_clock
from .workloads import stream_for_unit


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=DEFAULT_BACKEND,
                        choices=available_backends(),
                        help="simulation backend (choices list the "
                             "registered names)")


def _condition_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--voltages", type=float, nargs="+",
                        default=[0.81, 0.90, 1.00])
    parser.add_argument("--temperatures", type=float, nargs="+",
                        default=[0.0, 50.0, 100.0])


def _conditions(args) -> List[OperatingCondition]:
    return [OperatingCondition(v, t)
            for v in args.voltages for t in args.temperatures]


def cmd_stats(args) -> int:
    for name in (args.fu and [args.fu]) or PAPER_UNITS:
        fu = build_functional_unit(name)
        print(f"{name}: {fu.stats()}  — {fu.description}")
    return 0


def cmd_sta(args) -> int:
    conditions = _conditions(args)
    design = implement(args.fu, conditions)
    print(f"static critical-path delay of {args.fu} (ps):")
    for cond in conditions:
        print(f"  {cond.label}: {design.static_delay(cond):.1f}")
    return 0


def cmd_characterize(args) -> int:
    conditions = _conditions(args)
    fu = build_functional_unit(args.fu)
    stream = stream_for_unit(args.fu, args.cycles, seed=args.seed)
    stream.name = f"cli_{args.fu}_{args.seed}"
    runner = CampaignRunner(backend=args.backend)
    trace = runner.characterize(fu, stream, conditions)
    print(f"dynamic delay of {args.fu} over {args.cycles} random cycles (ps):")
    for k, cond in enumerate(conditions):
        d = trace.delays[k]
        print(f"  {cond.label}: mean {d.mean():8.1f}  max {d.max():8.1f}")
    return 0


def cmd_campaign(args) -> int:
    conditions = _conditions(args)
    runner = CampaignRunner(backend=args.backend, n_workers=args.workers,
                            use_cache=not args.no_cache,
                            shard_cycles=args.shard_cycles,
                            shard_corners=args.shard_corners)
    jobs = []
    for name in args.fu:
        fu = build_functional_unit(name)
        stream = stream_for_unit(name, args.cycles, seed=args.seed)
        stream.name = f"cli_campaign_{name}_{args.seed}"
        jobs.append(CampaignJob(fu, stream, conditions))
    traces = runner.run(jobs)
    stats = runner.stats
    summary = f"[{stats.hits} cached, {stats.misses} simulated"
    if stats.misses:
        summary += (f" in {stats.wall_seconds:.2f}s wall / "
                    f"{stats.sim_seconds:.2f}s sim across "
                    f"{stats.total_shards} shard(s)")
    summary += "]"
    print(f"campaign: {len(jobs)} job(s), {len(conditions)} corner(s), "
          f"backend={args.backend}, workers={args.workers} {summary}")
    for i, (job, trace) in enumerate(zip(jobs, traces)):
        d = trace.delays
        line = (f"  {job.fu.name:8s} {trace.n_cycles:6d} cycles  "
                f"mean {d.mean():8.1f} ps  worst {d.max():8.1f} ps")
        if i in stats.job_shards:
            line += (f"  [{stats.job_shards[i]} shard(s), "
                     f"{stats.job_seconds[i]:.2f}s sim")
            cps = stats.job_cycles_per_s(i)
            if cps is not None:  # throughput regressions visible here
                line += f", {cps:,.0f} cyc/s"
            line += "]"
        else:
            line += "  [cached]"
        print(line)
    return 0


def cmd_train(args) -> int:
    conditions = _conditions(args)
    fu = build_functional_unit(args.fu)
    stream = stream_for_unit(args.fu, args.cycles, seed=args.seed)
    stream.name = f"cli_train_{args.fu}_{args.seed}"
    runner = CampaignRunner(backend=args.backend)
    trace = runner.characterize(fu, stream, conditions)
    X, y = build_training_set(stream, conditions, trace.delays,
                              max_rows=args.max_rows)
    model = TEVoT().fit(X, y)
    model.save(args.output, metadata={"fu": args.fu, "cycles": args.cycles,
                                      "seed": args.seed})
    print(f"trained on {X.shape[0]} rows; saved to {args.output}")
    if args.publish:
        from .serve import ModelRegistry
        record = ModelRegistry(args.publish).publish(
            model, fu=fu, conditions=conditions, train_stream=stream)
        print(f"published {record.model_id} to {args.publish}")
    return 0


def cmd_predict(args) -> int:
    conditions = _conditions(args)
    model = TEVoT.load(args.model)
    fu = build_functional_unit(args.fu)
    workload = stream_for_unit(args.fu, args.cycles, seed=args.seed)
    workload.name = f"cli_wl_{args.fu}_{args.seed}"
    runner = CampaignRunner(backend=args.backend)
    trace = runner.characterize(fu, workload, conditions)
    clocks = error_free_clocks(trace)
    print(f"estimated TER at +{args.speedup:.0%} overclock:")
    for cond in conditions:
        tclk = sped_up_clock(clocks[cond], args.speedup)
        ter = model.timing_error_rate(workload, cond, tclk)
        print(f"  {cond.label}: {ter*100:6.2f}%")
    return 0


# -- serving ------------------------------------------------------------------


def cmd_serve(args) -> int:
    from .serve import PredictionEngine, PredictionServer

    engine = PredictionEngine(registry=args.registry, kind=args.kind,
                              sim_fallback=not args.no_fallback,
                              backend=args.backend)
    server = PredictionServer(engine, host=args.host, port=args.port,
                              batch_window_ms=args.batch_window_ms,
                              max_batch=args.max_batch,
                              verbose=args.verbose)
    host, port = server.address
    published = 0 if engine.registry is None else len(engine.registry)
    print(f"repro serve on http://{host}:{port}  "
          f"[registry={args.registry or '-'}, {published} model(s), "
          f"fallback={'off' if args.no_fallback else args.backend}, "
          f"window={args.batch_window_ms}ms, max_batch={args.max_batch}]",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def cmd_models(args) -> int:
    from .serve import MODEL_KINDS, ModelRegistry

    registry = ModelRegistry(args.registry)
    if args.action == "list":
        records = registry.list_models()
        if not records:
            print(f"no models published in {args.registry}")
            return 0
        for r in records:
            print(f"  {r.model_id:24s} key={r.key} "
                  f"{r.size_bytes / 1e3:8.1f} kB  {r.created}")
        return 0
    if args.action == "publish":
        if not args.model:
            print("models publish requires -m/--model", file=sys.stderr)
            return 2
        if not args.fu:
            print("models publish requires --fu", file=sys.stderr)
            return 2
        if args.kind not in MODEL_KINDS:
            print(f"unknown kind {args.kind!r}; available: "
                  f"{', '.join(MODEL_KINDS)}", file=sys.stderr)
            return 2
        model, metadata = load_model(args.model)
        record = registry.publish(model, fu=args.fu, kind=args.kind,
                                  metadata=metadata)
        print(f"published {record.model_id} (key={record.key})")
        return 0
    # gc
    report = registry.gc(keep=args.keep, dry_run=args.dry_run)
    prefix = "would have " if args.dry_run else ""
    print(f"registry gc: {prefix}{report.summary()}")
    return 0


def cmd_store(args) -> int:
    store = TraceStore(args.dir)
    if args.action == "list":
        entries = store.entries()
        if not entries:
            print(f"trace store {store.root} is empty")
        else:
            total = store.size_bytes()
            print(f"trace store {store.root}: {len(entries)} entr(y/ies), "
                  f"{total / 1e6:.2f} MB")
            for key, entry in sorted(entries.items(),
                                     key=lambda kv: kv[1].get("created", "")):
                print(f"  {key}  {entry['fu']:8s} {entry['stream']:28s} "
                      f"{entry['n_conditions']:3d}x{entry['n_cycles']:<7d} "
                      f"{entry.get('created', '')}")
        history = store.throughput_history()
        if history:
            print(f"throughput history ({len(history)} entr(y/ies), feeds "
                  f"the adaptive shard planner):")
            for key, entry in sorted(history.items()):
                cps = entry.get("corner_cycles_per_s") \
                    if isinstance(entry, dict) else None
                samples = entry.get("samples", "?") \
                    if isinstance(entry, dict) else "?"
                cps_text = (f"{cps:,.0f} corner-cyc/s"
                            if isinstance(cps, (int, float)) else "corrupt")
                print(f"  {key:32s} {cps_text}  ({samples} sample(s))")
        return 0
    # gc
    if args.drop_history:
        if args.dry_run:
            n = len(store.throughput_history())
            print(f"store gc: would have dropped {n} throughput-history "
                  f"entr(y/ies)")
        else:
            dropped = store.clear_throughput()
            print(f"store gc: dropped {dropped} throughput-history "
                  f"entr(y/ies)")
    max_bytes = None if args.max_mb is None else int(args.max_mb * 1e6)
    report = store.gc(max_bytes=max_bytes, dry_run=args.dry_run)
    prefix = "would have " if args.dry_run else ""
    print(f"store gc: {prefix}{report.summary()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TEVoT reproduction pipeline CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="FU netlist statistics")
    p.add_argument("--fu", choices=PAPER_UNITS)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("sta", help="per-corner static timing")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    _condition_args(p)
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("characterize", help="DTA delay summary")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    p.add_argument("--cycles", type=_positive_int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    _backend_arg(p)
    _condition_args(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("campaign",
                       help="batched DTA over several FUs (process pool)")
    p.add_argument("--fu", nargs="+", default=list(PAPER_UNITS),
                   choices=PAPER_UNITS)
    p.add_argument("--cycles", type=_positive_int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=_positive_int, default=1)
    p.add_argument("--shard-cycles", type=_positive_int, default=None,
                   help="cycle-axis shard pitch for single jobs "
                        "(default: auto-sized from --workers and any "
                        "persisted throughput history)")
    p.add_argument("--shard-corners", type=_positive_int, default=None,
                   help="corner-axis shard pitch for single jobs "
                        "(default: auto)")
    _backend_arg(p)
    p.add_argument("--no-cache", action="store_true",
                   help="skip the trace store entirely")
    _condition_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("train", help="train and save a TEVoT model")
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    p.add_argument("--cycles", type=_positive_int, default=2000)
    p.add_argument("--max-rows", type=_positive_int, default=60_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--publish", metavar="REGISTRY_DIR",
                   help="also publish into a serving model registry")
    _backend_arg(p)
    _condition_args(p)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="estimate TERs with a saved model")
    p.add_argument("-m", "--model", required=True)
    p.add_argument("--fu", required=True, choices=PAPER_UNITS)
    p.add_argument("--speedup", type=_nonnegative_float, default=0.10)
    p.add_argument("--cycles", type=_positive_int, default=500)
    p.add_argument("--seed", type=int, default=1)
    _backend_arg(p)
    _condition_args(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("serve", help="HTTP/JSON prediction server")
    p.add_argument("--registry", help="model registry directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port (0 binds an ephemeral one)")
    p.add_argument("--kind", default="tevot",
                   help="published model kind to serve")
    p.add_argument("--batch-window-ms", type=_nonnegative_float, default=2.0,
                   help="micro-batch collection window")
    p.add_argument("--max-batch", type=_positive_int, default=64)
    p.add_argument("--no-fallback", action="store_true",
                   help="disable the gate-level simulation fallback")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    _backend_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("models", help="serving model registry operations")
    p.add_argument("action", choices=("list", "publish", "gc"))
    p.add_argument("--registry", required=True)
    p.add_argument("-m", "--model", help="artifact to publish")
    p.add_argument("--fu", choices=PAPER_UNITS,
                   help="FU the published model belongs to")
    p.add_argument("--kind", default="tevot")
    p.add_argument("--keep", type=_positive_int, default=1,
                   help="gc: versions to keep per (FU, kind)")
    p.add_argument("--dry-run", action="store_true")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("store", help="characterization trace-store upkeep")
    p.add_argument("action", choices=("list", "gc"))
    p.add_argument("--dir", default=None,
                   help="store directory (default: REPRO_CACHE_DIR)")
    p.add_argument("--max-mb", type=_nonnegative_float, default=None,
                   help="gc: evict oldest traces beyond this size budget")
    p.add_argument("--drop-history", action="store_true",
                   help="gc: also reset the adaptive shard planner's "
                        "throughput history")
    p.add_argument("--dry-run", action="store_true")
    p.set_defaults(func=cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
