"""Typed, declarative run specifications.

Every stage of the pipeline — simulate, characterize, train, predict,
serve — is described by a frozen dataclass spec instead of an argument
soup.  Specs are:

* **validated** at construction (`__post_init__` canonicalizes and
  rejects bad values loudly);
* **round-trippable**: ``to_dict()`` emits a plain-JSON payload and
  ``from_dict()`` reconstructs it, rejecting unknown keys so a typo'd
  config key can never be silently ignored;
* **fingerprintable**: :meth:`Spec.fingerprint` hashes the canonical
  payload with the shared :func:`repro.flow.manifest.stable_fingerprint`
  helper, so a spec can key the
  :class:`~repro.flow.tracestore.TraceStore` or the serving
  :class:`~repro.serve.registry.ModelRegistry` like any other content
  hash in the repo;
* **loadable from files**: :meth:`Spec.from_file` reads TOML
  (:mod:`tomllib`) or JSON documents laid out as one section per
  command (``[campaign]``, ``[train]``, ``[predict]``, ``[serve]``,
  ``[experiment]``) plus shared defaults (``[corners]``, ``[stream]``,
  ``[sim]``, ``[shards]``) that apply to every section that does not
  override them.

The :class:`~repro.api.workspace.Workspace` facade executes specs; the
CLI parses every subcommand into them (``--config run.toml`` with
individual flags as overrides).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from ..circuits.functional_units import available_units
from ..flow.manifest import stable_fingerprint
from ..sim.engine import DEFAULT_BACKEND, available_backends
from ..timing.corners import (
    CLOCK_SPEEDUPS,
    OperatingCondition,
    temperature_points,
    voltage_points,
)
from ..workloads.streams import (
    OperandStream,
    float_random_stream,
    random_stream,
    stream_for_unit,
)

__all__ = [
    "CampaignSpec",
    "CornerSpec",
    "DEFAULT_TEMPERATURES",
    "DEFAULT_VOLTAGES",
    "ExperimentSpec",
    "PredictSpec",
    "ServeSpec",
    "ShardSpec",
    "SimSpec",
    "Spec",
    "SpecError",
    "StreamSpec",
    "TrainSpec",
    "load_config",
]

#: Corner-grid defaults shared with the CLI (the Fig.-3 subset axes).
DEFAULT_VOLTAGES: Tuple[float, ...] = (0.81, 0.90, 1.00)
DEFAULT_TEMPERATURES: Tuple[float, ...] = (0.0, 50.0, 100.0)

#: Top-level file sections holding shared sub-spec defaults.
SHARED_SECTIONS = ("corners", "stream", "sim", "shards")


class SpecError(ValueError):
    """A spec failed validation or decoding."""


def _float_tuple(name: str, value) -> Tuple[float, ...]:
    if value is None:
        return ()
    if isinstance(value, (str, bytes)) or not isinstance(
            value, (list, tuple)):
        raise SpecError(f"{name} must be a list of numbers, got {value!r}")
    try:
        return tuple(float(v) for v in value)
    except (TypeError, ValueError):
        raise SpecError(
            f"{name} must be a list of numbers, got {value!r}") from None


def _require_positive_int(name: str, value, minimum: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{name} must be an int, got {value!r}")
    if value < minimum:
        raise SpecError(f"{name} must be >= {minimum}, got {value}")
    return value


def _optional_positive_int(name: str, value) -> Optional[int]:
    if value is None:
        return None
    return _require_positive_int(name, value)


def _require_bool(name: str, value) -> bool:
    if not isinstance(value, bool):
        raise SpecError(f"{name} must be a bool, got {value!r}")
    return value


def _require_str(name: str, value) -> str:
    if not isinstance(value, str):
        raise SpecError(f"{name} must be a string, got {value!r}")
    return value


@dataclass(frozen=True)
class Spec:
    """Base machinery shared by every spec dataclass.

    Subclasses declare their nested-spec fields in ``_NESTED_TYPES``
    (field name -> spec class) so :meth:`from_dict` can decode them,
    and their config section name in ``_SECTION`` for file loading.
    """

    _SECTION = ""
    _NESTED_TYPES: ClassVar[Dict[str, Type["Spec"]]] = {}

    # -- dict round-trip ------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-JSON payload (dicts/lists/scalars only), in field order.

        ``from_dict(to_dict())`` reconstructs an equal spec, and
        ``to_dict`` of that reconstruction is byte-identical when
        serialized — construction canonicalizes every value.
        """
        out: Dict = {}
        for f in dataclasses.fields(self):
            if not f.init:
                continue
            value = getattr(self, f.name)
            out[f.name] = self._encode(value)
        return out

    @staticmethod
    def _encode(value):
        if isinstance(value, Spec):
            return value.to_dict()
        if isinstance(value, tuple):
            return [Spec._encode(v) for v in value]
        return value

    @classmethod
    def from_dict(cls, data: Dict) -> "Spec":
        """Construct from a payload, rejecting unknown keys loudly."""
        if not isinstance(data, dict):
            raise SpecError(
                f"{cls.__name__} payload must be a mapping, got "
                f"{type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls) if f.init}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown {cls.__name__} key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})")
        nested = cls._nested_types()
        kwargs = {}
        for name, value in data.items():
            if name in nested and value is not None:
                value = nested[name].from_dict(value)
            elif isinstance(value, list):
                value = tuple(tuple(v) if isinstance(v, list) else v
                              for v in value)
            kwargs[name] = value
        return cls(**kwargs)

    @classmethod
    def _nested_types(cls) -> Dict[str, Type["Spec"]]:
        return getattr(cls, "_NESTED_TYPES", {})

    def replace(self, **changes) -> "Spec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- identity -------------------------------------------------------------

    def fingerprint(self, length: int = 16) -> str:
        """Stable content hash of the canonical payload.

        Namespaced by the spec class, so e.g. equal-looking
        ``CampaignSpec`` and ``TrainSpec`` payloads cannot collide.
        """
        return stable_fingerprint(self.to_dict(), tag=type(self).__name__,
                                  length=length)

    def to_json(self) -> str:
        """Canonical single-line JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(", ", ": "))

    # -- file loading ---------------------------------------------------------

    @classmethod
    def from_file(cls, path: Union[str, Path],
                  section: Optional[str] = None) -> "Spec":
        """Load from a sectioned TOML or JSON config document.

        The document holds one table per command section plus shared
        sub-spec sections (:data:`SHARED_SECTIONS`) that fill any
        nested field the command section leaves unset.  Unknown
        top-level sections and unknown keys inside any section are
        rejected.
        """
        data = load_config(path)
        section = section or cls._SECTION
        if not section:
            raise SpecError(f"{cls.__name__} has no config section")
        payload = dict(data.get(section, {}))
        nested = cls._nested_types()
        for name in SHARED_SECTIONS:
            if name in data and name in nested and name not in payload:
                payload[name] = data[name]
        return cls.from_dict(payload)


#: Section names every config document may use at top level.
_COMMAND_SECTIONS = ("campaign", "train", "predict", "serve", "experiment")


def load_config(path: Union[str, Path]) -> Dict:
    """Read a TOML (``.toml``) or JSON config document.

    Validates the top-level section names so a misspelled section
    (e.g. ``[compaign]``) fails loudly instead of silently yielding an
    all-defaults spec.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        import tomllib
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML in {path}: {exc}") from None
    elif path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON in {path}: {exc}") from None
    else:
        raise SpecError(
            f"config file {path} must end in .toml or .json")
    if not isinstance(data, dict):
        raise SpecError(f"config {path} must be a table of sections")
    allowed = set(_COMMAND_SECTIONS) | set(SHARED_SECTIONS)
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"unknown config section(s) in {path}: {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})")
    return data


# -- leaf specs ---------------------------------------------------------------


@dataclass(frozen=True)
class CornerSpec(Spec):
    """An operating-corner grid: ``voltages x temperatures``, or an
    explicit list of ``(V, T)`` pairs (exactly one form)."""

    _SECTION = "corners"

    voltages: Tuple[float, ...] = DEFAULT_VOLTAGES
    temperatures: Tuple[float, ...] = DEFAULT_TEMPERATURES
    pairs: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "voltages",
                           _float_tuple("voltages", self.voltages))
        object.__setattr__(self, "temperatures",
                           _float_tuple("temperatures", self.temperatures))
        pairs = self.pairs or ()
        if isinstance(pairs, (str, bytes)) or not isinstance(
                pairs, (list, tuple)):
            raise SpecError(f"pairs must be a list of (V, T) pairs, "
                            f"got {pairs!r}")
        canon = []
        for p in pairs:
            if not isinstance(p, (list, tuple)) or len(p) != 2:
                raise SpecError(f"each corner pair must be (V, T), "
                                f"got {p!r}")
            canon.append((float(p[0]), float(p[1])))
        object.__setattr__(self, "pairs", tuple(canon))
        if self.pairs and (self.voltages or self.temperatures):
            raise SpecError(
                "give either explicit pairs or a voltages x temperatures "
                "grid, not both (pass voltages=(), temperatures=() with "
                "pairs, or use CornerSpec.from_conditions)")
        if not self.pairs and not (self.voltages and self.temperatures):
            raise SpecError("corner grid needs voltages and temperatures "
                            "(or explicit pairs)")
        self.conditions()  # V/T range validation, loudly at build time

    @classmethod
    def from_conditions(
            cls, conditions: Sequence[OperatingCondition]) -> "CornerSpec":
        """Spec for an explicit (possibly non-rectangular) corner list."""
        return cls(voltages=(), temperatures=(),
                   pairs=tuple((c.voltage, c.temperature)
                               for c in conditions))

    @classmethod
    def paper(cls) -> "CornerSpec":
        """The full 100-corner Table I grid."""
        return cls(voltages=tuple(voltage_points()),
                   temperatures=tuple(temperature_points()))

    def conditions(self) -> List[OperatingCondition]:
        """The corner list, in grid (voltage-major) or pair order."""
        try:
            if self.pairs:
                return [OperatingCondition(v, t) for v, t in self.pairs]
            return [OperatingCondition(v, t)
                    for v in self.voltages for t in self.temperatures]
        except ValueError as exc:
            raise SpecError(str(exc)) from None

    @property
    def n_corners(self) -> int:
        return (len(self.pairs) if self.pairs
                else len(self.voltages) * len(self.temperatures))


@dataclass(frozen=True)
class StreamSpec(Spec):
    """A generated operand stream (the repo's random workload sources).

    ``source`` picks the generator: ``auto`` chooses by FU family
    (float units get value-space sampling), ``random`` / ``float``
    force one.  ``name`` overrides the derived stream label (which
    otherwise encodes FU, cycles, and seed — the label only affects
    trace-store blob names, never cache keys).
    """

    _SECTION = "stream"

    cycles: int = 1000
    seed: int = 0
    source: str = "auto"
    name: str = ""

    def __post_init__(self) -> None:
        _require_positive_int("cycles", self.cycles)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"seed must be an int, got {self.seed!r}")
        if self.source not in ("auto", "random", "float"):
            raise SpecError(f"source must be auto|random|float, "
                            f"got {self.source!r}")
        _require_str("name", self.name)

    def build(self, fu_name: str,
              label: Optional[str] = None) -> OperandStream:
        """Generate the stream for one FU, with a deterministic name."""
        if self.source == "random":
            stream = random_stream(self.cycles, seed=self.seed)
        elif self.source == "float":
            stream = float_random_stream(self.cycles, seed=self.seed)
        else:
            stream = stream_for_unit(fu_name, self.cycles, seed=self.seed)
        stream.name = (label or self.name
                       or f"{fu_name}_{self.cycles}c_s{self.seed}")
        return stream


@dataclass(frozen=True)
class SimSpec(Spec):
    """Simulation-engine selection: backend, compiled kernels, chunking.

    ``compiled=False`` resolves the ``levelized``/``bitpacked``
    backends to their retained per-gate reference twins
    (``*_ref`` in the engine registry) — delay-bit-identical but
    orders of magnitude slower, for end-to-end audits of the compiled
    kernels.  ``chunk_cycles`` pins the cycle-axis working-set chunk
    on backends that support it (never affects results).
    """

    _SECTION = "sim"

    backend: str = DEFAULT_BACKEND
    compiled: bool = True
    chunk_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        _require_str("backend", self.backend)
        _require_bool("compiled", self.compiled)
        _optional_positive_int("chunk_cycles", self.chunk_cycles)
        if self.backend not in available_backends():
            raise SpecError(
                f"unknown sim backend {self.backend!r}; available: "
                f"{', '.join(available_backends())}")
        if not self.compiled and self.backend not in ("levelized",
                                                      "bitpacked"):
            raise SpecError(
                f"compiled=False requires a backend with a per-gate "
                f"reference twin (levelized or bitpacked), got "
                f"{self.backend!r}")
        if self.chunk_cycles is not None:
            from ..sim.engine import get_backend
            if not get_backend(self.backend_name()).supports_chunking:
                raise SpecError(
                    f"backend {self.backend_name()!r} does not honor "
                    f"chunk_cycles (supports_chunking=False)")

    def backend_name(self) -> str:
        """Registry name honoring the ``compiled`` flag."""
        return self.backend if self.compiled else f"{self.backend}_ref"


@dataclass(frozen=True)
class ShardSpec(Spec):
    """Worker-pool and shard-grid configuration for campaigns.

    ``persistent`` (default True) runs multi-worker campaigns on the
    Workspace's long-lived warm :class:`~repro.flow.pool.WorkerPool`
    instead of a per-batch process pool; ``threads`` adds in-worker
    thread parallelism over independent logic levels on backends with
    ``supports_threads``.  Neither ever affects results.
    """

    _SECTION = "shards"

    workers: int = 1
    shard_cycles: Optional[int] = None
    shard_corners: Optional[int] = None
    adaptive_history: bool = True
    persistent: bool = True
    threads: int = 1

    def __post_init__(self) -> None:
        _require_positive_int("workers", self.workers)
        _optional_positive_int("shard_cycles", self.shard_cycles)
        _optional_positive_int("shard_corners", self.shard_corners)
        _require_bool("adaptive_history", self.adaptive_history)
        _require_bool("persistent", self.persistent)
        _require_positive_int("threads", self.threads)


# -- command specs ------------------------------------------------------------


def _default_corners() -> CornerSpec:
    return CornerSpec()


def _default_stream() -> StreamSpec:
    return StreamSpec()


def _default_sim() -> SimSpec:
    return SimSpec()


def _default_shards() -> ShardSpec:
    return ShardSpec()


def _validate_fus(fus) -> Tuple[str, ...]:
    if isinstance(fus, str):
        fus = (fus,)
    if not isinstance(fus, (list, tuple)) or not fus:
        raise SpecError("fus must be a non-empty list of FU names")
    known = available_units()
    for name in fus:
        if name not in known:
            raise SpecError(f"unknown FU {name!r}; available: "
                            f"{', '.join(known)}")
    return tuple(fus)


@dataclass(frozen=True)
class CampaignSpec(Spec):
    """A batched characterization campaign over one or more FUs."""

    _SECTION = "campaign"
    _NESTED_TYPES = {"stream": StreamSpec, "corners": CornerSpec,
                     "sim": SimSpec, "shards": ShardSpec}

    fus: Tuple[str, ...] = ()
    stream: StreamSpec = field(default_factory=_default_stream)
    corners: CornerSpec = field(default_factory=_default_corners)
    sim: SimSpec = field(default_factory=_default_sim)
    shards: ShardSpec = field(default_factory=_default_shards)
    cache: bool = True
    store: Optional[str] = None

    def __post_init__(self) -> None:
        fus = self.fus or ()
        object.__setattr__(self, "fus", _validate_fus(fus) if fus else ())
        _require_bool("cache", self.cache)
        if self.store is not None:
            _require_str("store", self.store)

    def resolved_fus(self) -> Tuple[str, ...]:
        """Explicit FU list, defaulting to every paper unit."""
        if self.fus:
            return self.fus
        from ..circuits.functional_units import PAPER_UNITS
        return tuple(PAPER_UNITS)


@dataclass(frozen=True)
class TrainSpec(Spec):
    """Train (and optionally save/publish) a TEVoT model for one FU.

    ``fu`` has no default — an empty value means "not set yet" and is
    rejected at execution time, so a forgotten ``--fu``/config key can
    never silently train the wrong unit.  ``publish`` sends the model
    to ``registry`` (a directory path) when given, else to the
    workspace's own registry.
    """

    _SECTION = "train"
    _NESTED_TYPES = {"stream": StreamSpec, "corners": CornerSpec,
                     "sim": SimSpec, "shards": ShardSpec}

    fu: str = ""
    stream: StreamSpec = field(
        default_factory=lambda: StreamSpec(cycles=2000))
    corners: CornerSpec = field(default_factory=_default_corners)
    sim: SimSpec = field(default_factory=_default_sim)
    shards: ShardSpec = field(default_factory=_default_shards)
    max_rows: int = 60_000
    output: Optional[str] = None
    publish: bool = False
    registry: Optional[str] = None

    def __post_init__(self) -> None:
        _require_str("fu", self.fu)
        if self.fu:
            _validate_fus(self.fu)
        _require_positive_int("max_rows", self.max_rows)
        if self.output is not None:
            _require_str("output", self.output)
        _require_bool("publish", self.publish)
        if self.registry is not None:
            _require_str("registry", self.registry)


@dataclass(frozen=True)
class PredictSpec(Spec):
    """Estimate TERs for a workload with a saved model artifact."""

    _SECTION = "predict"
    _NESTED_TYPES = {"stream": StreamSpec, "corners": CornerSpec,
                     "sim": SimSpec, "shards": ShardSpec}

    fu: str = ""
    model: Optional[str] = None
    speedup: float = 0.10
    stream: StreamSpec = field(
        default_factory=lambda: StreamSpec(cycles=500, seed=1))
    corners: CornerSpec = field(default_factory=_default_corners)
    sim: SimSpec = field(default_factory=_default_sim)
    shards: ShardSpec = field(default_factory=_default_shards)

    def __post_init__(self) -> None:
        _require_str("fu", self.fu)
        if self.fu:
            _validate_fus(self.fu)
        object.__setattr__(self, "speedup", float(self.speedup))
        if self.speedup < 0:
            raise SpecError(f"speedup must be >= 0, got {self.speedup}")
        if self.model is not None:
            _require_str("model", self.model)


@dataclass(frozen=True)
class ServeSpec(Spec):
    """HTTP prediction-serving configuration."""

    _SECTION = "serve"
    _NESTED_TYPES = {"sim": SimSpec}

    registry: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 8000
    kind: str = "tevot"
    batch_window_ms: float = 2.0
    max_batch: int = 64
    max_queue: int = 256
    default_deadline_ms: float = 0.0
    workers: int = 1
    request_log: Optional[str] = None
    fallback: bool = True
    push_rollout: bool = True
    verbose: bool = False
    sim: SimSpec = field(default_factory=_default_sim)

    def __post_init__(self) -> None:
        if self.registry is not None:
            _require_str("registry", self.registry)
        _require_str("host", self.host)
        if isinstance(self.port, bool) or not isinstance(self.port, int) \
                or not 0 <= self.port <= 65535:
            raise SpecError(f"port must be 0..65535, got {self.port!r}")
        _require_str("kind", self.kind)
        object.__setattr__(self, "batch_window_ms",
                           float(self.batch_window_ms))
        if self.batch_window_ms < 0:
            raise SpecError("batch_window_ms must be >= 0")
        _require_positive_int("max_batch", self.max_batch)
        _require_positive_int("max_queue", self.max_queue)
        object.__setattr__(self, "default_deadline_ms",
                           float(self.default_deadline_ms))
        if self.default_deadline_ms < 0:
            raise SpecError("default_deadline_ms must be >= 0 (0 disables)")
        _require_positive_int("workers", self.workers)
        if self.request_log is not None:
            _require_str("request_log", self.request_log)
        _require_bool("fallback", self.fallback)
        _require_bool("push_rollout", self.push_rollout)
        _require_bool("verbose", self.verbose)


@dataclass(frozen=True)
class ExperimentSpec(Spec):
    """A full Fig.-2 experiment: characterize, train, evaluate.

    The default streams follow the paper's unseen-test-data protocol
    (test seed 1 vs train seed 0), and ``corners`` defaults to the
    full Table I grid like the deprecated
    :func:`repro.core.run_experiment`.
    """

    _SECTION = "experiment"
    _NESTED_TYPES = {"train_stream": StreamSpec, "test_stream": StreamSpec,
                     "corners": CornerSpec, "sim": SimSpec,
                     "shards": ShardSpec}

    fu: str = "int_add"
    train_stream: StreamSpec = field(
        default_factory=lambda: StreamSpec(cycles=2000,
                                           name="random_train"))
    test_stream: StreamSpec = field(
        default_factory=lambda: StreamSpec(cycles=2000, seed=1,
                                           name="random_test"))
    corners: CornerSpec = field(default_factory=CornerSpec.paper)
    sim: SimSpec = field(default_factory=_default_sim)
    shards: ShardSpec = field(default_factory=_default_shards)
    max_rows: int = 200_000
    speedups: Tuple[float, ...] = CLOCK_SPEEDUPS
    seed: int = 0
    cache: bool = True
    publish: bool = False

    def __post_init__(self) -> None:
        _validate_fus(self.fu)
        _require_positive_int("max_rows", self.max_rows)
        object.__setattr__(self, "speedups",
                           _float_tuple("speedups", self.speedups))
        if not self.speedups:
            raise SpecError("speedups must be non-empty")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"seed must be an int, got {self.seed!r}")
        _require_bool("cache", self.cache)
        _require_bool("publish", self.publish)
