"""Declarative front door: typed specs + the ``Workspace`` facade.

The one import new code needs::

    from repro.api import CampaignSpec, Workspace

    ws = Workspace("my_run")
    result = ws.characterize(CampaignSpec.from_file("run.toml"))

Specs (:mod:`repro.api.specs`) are frozen, validated, JSON/TOML
round-trippable descriptions of runs; the
:class:`~repro.api.workspace.Workspace` owns the trace store and model
registry and executes specs with byte-identical cache keys and model
fingerprints to the legacy flag/kwarg entry points it replaces.
"""

from .specs import (
    CampaignSpec,
    CornerSpec,
    DEFAULT_TEMPERATURES,
    DEFAULT_VOLTAGES,
    ExperimentSpec,
    PredictSpec,
    ServeSpec,
    ShardSpec,
    SimSpec,
    Spec,
    SpecError,
    StreamSpec,
    TrainSpec,
    load_config,
)
from .workspace import (
    CampaignResult,
    PredictResult,
    TrainResult,
    Workspace,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CornerSpec",
    "DEFAULT_TEMPERATURES",
    "DEFAULT_VOLTAGES",
    "ExperimentSpec",
    "PredictResult",
    "PredictSpec",
    "ServeSpec",
    "ShardSpec",
    "SimSpec",
    "Spec",
    "SpecError",
    "StreamSpec",
    "TrainResult",
    "TrainSpec",
    "Workspace",
    "load_config",
]
