"""The ``Workspace`` facade: one front door over the whole flow.

A :class:`Workspace` owns the on-disk state of a deployment — the
characterization :class:`~repro.flow.tracestore.TraceStore` and the
serving :class:`~repro.serve.registry.ModelRegistry` — and executes
declarative :mod:`repro.api.specs` against it:

* :meth:`simulate` — run a campaign spec without touching the cache;
* :meth:`characterize` — the cached campaign path (what ``repro
  campaign`` / ``repro characterize`` run);
* :meth:`train` — characterize a training stream, fit TEVoT, save and
  optionally publish the artifact;
* :meth:`predict` — TER estimates for a saved artifact over a workload
  spec;
* :meth:`experiment` — the full Fig.-2 protocol
  (:func:`repro.core.pipeline.experiment_impl`);
* :meth:`serve` — build the micro-batching HTTP server over the
  workspace registry.

Spec-driven runs produce byte-identical trace-store cache keys and
model fingerprints to the equivalent hand-built
:class:`~repro.flow.campaign.CampaignRunner` / CLI-flag invocations:
the facade builds the very same streams, conditions, and jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..circuits.functional_units import FunctionalUnit, build_functional_unit
from ..core.features import build_training_set
from ..core.model import TEVoT
from ..core.pipeline import ExperimentResult, experiment_impl
from ..flow.campaign import (
    CampaignJob,
    CampaignRunner,
    CampaignStats,
    error_free_clocks,
)
from ..flow.pool import WorkerPool
from ..flow.tracestore import is_remote_url, open_trace_store
from ..sim.dta import DelayTrace
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import sped_up_clock
from ..workloads.streams import OperandStream
from .specs import (
    CampaignSpec,
    ExperimentSpec,
    PredictSpec,
    ServeSpec,
    ShardSpec,
    SimSpec,
    SpecError,
    TrainSpec,
)

__all__ = [
    "CampaignResult",
    "PredictResult",
    "TrainResult",
    "Workspace",
]


@dataclass
class CampaignResult:
    """Traces plus run bookkeeping from one campaign spec."""

    spec: CampaignSpec
    jobs: List[CampaignJob]
    traces: List[DelayTrace]
    stats: CampaignStats

    def __iter__(self):
        return iter(self.traces)

    def __len__(self) -> int:
        return len(self.traces)


@dataclass
class TrainResult:
    """A trained model plus where it went."""

    spec: TrainSpec
    model: TEVoT
    n_rows: int
    train_trace: DelayTrace
    stream: OperandStream
    path: Optional[Path] = None
    record: Optional[object] = None  # ModelRecord when published


@dataclass
class PredictResult:
    """Per-corner TER estimates for one workload/model pair."""

    spec: PredictSpec
    ters: Dict  # OperatingCondition -> estimated TER at the sped-up clock
    clocks: Dict  # OperatingCondition -> error-free clock period (ps)


class Workspace:
    """Owns stores + runners; executes specs.

    Also owns the persistent warm :class:`~repro.flow.pool.WorkerPool`
    used by multi-worker campaigns (``ShardSpec(persistent=True)``),
    shared across every spec run so worker program caches stay warm
    between calls.  Use the workspace as a context manager (or call
    :meth:`close`) to reap the workers deterministically.

    Parameters
    ----------
    root:
        Directory holding the workspace state: traces under
        ``root/traces``, published models under ``root/registry``.
        ``None`` (default) uses the global cache directory
        (``REPRO_CACHE_DIR``) for traces and has no registry unless
        ``registry`` names one.  An ``http(s)://host:port`` URL routes
        both through a running store service (``repro store serve``):
        store and registry become
        :class:`~repro.remote.client.RemoteTraceStore` /
        :class:`~repro.remote.client.RemoteModelRegistry` with
        byte-identical cache keys and model fingerprints to the
        local-path workspace the service fronts.
    store / registry:
        Explicit overrides for either location (path or an already
        constructed :class:`TraceStore` /
        :class:`~repro.serve.registry.ModelRegistry`).
    library:
        Cell library used for every characterization.
    lock_timeout:
        Seconds workspace-built stores wait on the inter-process store
        lock before raising
        :class:`~repro.flow.durable.StoreLockTimeout` (naming the
        holder).  Raise it for workspaces shared by many concurrent
        writers; ignored for already-constructed ``store``/``registry``
        objects, which carry their own.
    """

    def __init__(self, root: Union[str, Path, None] = None, *,
                 store=None, registry=None,
                 library: CellLibrary = DEFAULT_LIBRARY,
                 lock_timeout: float = 10.0) -> None:
        self.url: Optional[str] = None
        if root is not None and is_remote_url(root):
            # remote workspace: both components dial the store service
            self.url = str(root).rstrip("/")
            self.root = None
            store = self.url if store is None else store
            registry = self.url if registry is None else registry
        else:
            self.root = Path(root) if root is not None else None
        if store is None and self.root is not None:
            store = self.root / "traces"
        self._store = store
        if registry is None and self.root is not None:
            registry = self.root / "registry"
        self._registry = registry
        self.library = library
        self.lock_timeout = lock_timeout
        self._fus: Dict[str, FunctionalUnit] = {}
        self._pools: Dict[int, WorkerPool] = {}

    # -- lifecycle ------------------------------------------------------------

    def pool(self, workers: int) -> WorkerPool:
        """The workspace-owned persistent :class:`WorkerPool` of this
        width (created on first use, shared by every spec run until
        :meth:`close`).  Sharing the pool across campaigns is what
        keeps worker program caches warm between ``characterize`` /
        ``train`` / ``predict`` calls on the same FUs."""
        pool = self._pools.get(workers)
        if pool is None or pool.closed:
            pool = WorkerPool(workers)
            self._pools[workers] = pool
        return pool

    def close(self) -> None:
        """Reap every workspace-owned worker pool (idempotent).

        Also runs on ``with Workspace(...) as ws:`` exit; pools are
        additionally backstopped by a GC finalizer, so leaking a
        Workspace cannot orphan worker processes.
        """
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- owned components -----------------------------------------------------

    @property
    def store(self):
        """The workspace trace store (built on first use): a
        :class:`TraceStore`, or a remote client for a URL workspace."""
        if self._store is None or isinstance(self._store, (str, Path)):
            self._store = open_trace_store(self._store,
                                           lock_timeout=self.lock_timeout)
        return self._store

    @property
    def registry(self):
        """The workspace model registry, or None when unconfigured."""
        from ..serve.registry import open_model_registry

        if self._registry is None:
            return None
        if isinstance(self._registry, (str, Path)):
            self._registry = open_model_registry(
                self._registry, lock_timeout=self.lock_timeout)
        return self._registry

    def _registry_for(self, path: Optional[str]):
        """Registry override from a spec, else the workspace's own."""
        from ..serve.registry import open_model_registry

        if path is not None:
            return open_model_registry(path, lock_timeout=self.lock_timeout)
        return self.registry

    def resolve_path(self, path: Union[str, Path]) -> Path:
        """Anchor a relative spec path at the workspace root (if any)."""
        path = Path(path)
        if self.root is not None and not path.is_absolute():
            return self.root / path
        return path

    def functional_unit(self, name: str) -> FunctionalUnit:
        """Build (and memoize) an FU by name."""
        fu = self._fus.get(name)
        if fu is None:
            fu = build_functional_unit(name)
            self._fus[name] = fu
        return fu

    def runner(self, sim: Optional[SimSpec] = None,
               shards: Optional[ShardSpec] = None,
               cache: bool = True,
               store: Optional[str] = None) -> CampaignRunner:
        """A :class:`CampaignRunner` configured from spec fragments."""
        sim = sim or SimSpec()
        shards = shards or ShardSpec()
        runner_store = store if store is not None else self._store
        pool = (self.pool(shards.workers)
                if shards.persistent and shards.workers > 1 else None)
        # compiled=False is an audit of the fast kernels: reading a
        # (bit-identical, compiled-produced) cache entry would skip the
        # reference simulation entirely, so audits always run fresh
        return CampaignRunner(
            backend=sim.backend_name(),
            store=runner_store,
            n_workers=shards.workers,
            use_cache=cache and sim.compiled,
            shard_cycles=shards.shard_cycles,
            shard_corners=shards.shard_corners,
            chunk_cycles=sim.chunk_cycles,
            adaptive_history=shards.adaptive_history,
            persistent=shards.persistent,
            threads=shards.threads,
            pool=pool)

    # -- campaign -------------------------------------------------------------

    def jobs(self, spec: CampaignSpec) -> List[CampaignJob]:
        """The campaign's job list (FU x stream x corners)."""
        conditions = spec.corners.conditions()
        jobs = []
        for name in spec.resolved_fus():
            fu = self.functional_unit(name)
            stream = spec.stream.build(name)
            jobs.append(CampaignJob(fu, stream, conditions, self.library))
        return jobs

    def characterize(self, spec: CampaignSpec) -> CampaignResult:
        """Run a campaign spec through the cached store."""
        runner = self.runner(spec.sim, spec.shards, cache=spec.cache,
                             store=spec.store)
        jobs = self.jobs(spec)
        traces = runner.run(jobs)
        return CampaignResult(spec=spec, jobs=jobs, traces=traces,
                              stats=runner.stats)

    def simulate(self, spec: CampaignSpec) -> CampaignResult:
        """Run a campaign spec with caching forced off (pure sim)."""
        return self.characterize(spec.replace(cache=False))

    # -- training -------------------------------------------------------------

    def train(self, spec: TrainSpec) -> TrainResult:
        """Characterize the training stream and fit a TEVoT model.

        Mirrors the ``repro train`` flag path exactly (same stream,
        conditions, and feature build), so artifacts and registry keys
        are byte-identical between the two.  ``spec.output`` saves the
        artifact; ``spec.publish`` also publishes it — into
        ``spec.registry`` when set, else the workspace registry.
        """
        if not spec.fu:
            raise SpecError("TrainSpec.fu must name a functional unit")
        conditions = spec.corners.conditions()
        fu = self.functional_unit(spec.fu)
        stream = spec.stream.build(spec.fu)
        runner = self.runner(spec.sim, spec.shards)
        trace = runner.run([CampaignJob(fu, stream, conditions,
                                        self.library)])[0]
        X, y = build_training_set(stream, conditions, trace.delays,
                                  max_rows=spec.max_rows)
        model = TEVoT().fit(X, y)
        result = TrainResult(spec=spec, model=model, n_rows=int(X.shape[0]),
                             train_trace=trace, stream=stream)
        if spec.output:
            path = Path(spec.output)
            model.save(path, metadata={"fu": spec.fu,
                                       "cycles": spec.stream.cycles,
                                       "seed": spec.stream.seed,
                                       "spec": spec.fingerprint()})
            result.path = path
        if spec.publish:
            registry = self._registry_for(spec.registry)
            if registry is None:
                raise SpecError(
                    "TrainSpec.publish requires a registry: set "
                    "TrainSpec.registry (CLI --publish DIR) or configure "
                    "the workspace (Workspace(root=...) / "
                    "Workspace(registry=...))")
            result.record = registry.publish(
                model, fu=fu, conditions=conditions, train_stream=stream)
        return result

    # -- prediction -----------------------------------------------------------

    def predict(self, spec: PredictSpec) -> PredictResult:
        """TER estimates at a sped-up clock, like ``repro predict``.

        Characterizes the workload spec for ground-truth error-free
        clocks, then queries the saved model at each corner.
        """
        if not spec.fu:
            raise SpecError("PredictSpec.fu must name a functional unit")
        if not spec.model:
            raise SpecError("PredictSpec.model must name a saved artifact")
        model = TEVoT.load(spec.model)
        conditions = spec.corners.conditions()
        fu = self.functional_unit(spec.fu)
        workload = spec.stream.build(spec.fu)
        runner = self.runner(spec.sim, spec.shards)
        trace = runner.run([CampaignJob(fu, workload, conditions,
                                        self.library)])[0]
        clocks = error_free_clocks(trace)
        ters = {}
        for cond in conditions:
            tclk = sped_up_clock(clocks[cond], spec.speedup)
            ters[cond] = model.timing_error_rate(workload, cond, tclk)
        return PredictResult(spec=spec, ters=ters, clocks=clocks)

    # -- experiments ----------------------------------------------------------

    def experiment(self, spec: ExperimentSpec) -> ExperimentResult:
        """Full Fig.-2 protocol from a declarative spec."""
        fu = self.functional_unit(spec.fu)
        train_stream = spec.train_stream.build(spec.fu)
        test_stream = spec.test_stream.build(spec.fu)
        runner = self.runner(spec.sim, spec.shards, cache=spec.cache)
        registry = self.registry if spec.publish else None
        if spec.publish and registry is None:
            raise SpecError(
                "ExperimentSpec.publish requires a workspace registry")
        return experiment_impl(
            fu, train_stream, test_stream, spec.corners.conditions(),
            self.library, max_train_rows=spec.max_rows,
            speedups=spec.speedups, seed=spec.seed, runner=runner,
            registry=registry)

    # -- serving --------------------------------------------------------------

    def engine(self, spec: ServeSpec):
        """An engine for a spec: single-process or a worker cluster.

        ``spec.workers > 1`` builds a
        :class:`~repro.serve.cluster.ClusterEngine` fanning batches
        over that many worker processes (each replicating the registry
        manifest); otherwise a plain in-process
        :class:`~repro.serve.engine.PredictionEngine`.  Both are
        bit-exact for the same registry.
        """
        from ..serve.engine import PredictionEngine

        registry = self._registry_for(spec.registry)
        if spec.workers > 1:
            from ..serve.cluster import ClusterEngine

            return ClusterEngine(registry=registry, workers=spec.workers,
                                 kind=spec.kind,
                                 sim_fallback=spec.fallback,
                                 backend=spec.sim.backend_name(),
                                 push_rollout=spec.push_rollout)
        return PredictionEngine(registry=registry, kind=spec.kind,
                                sim_fallback=spec.fallback,
                                backend=spec.sim.backend_name(),
                                push_rollout=spec.push_rollout)

    def serve(self, spec: ServeSpec):
        """A ready-to-run :class:`~repro.serve.server.PredictionServer`.

        The server is constructed (socket bound) but not serving;
        call ``serve_forever()`` or ``start_background()`` on it and
        stop it with ``close()`` (drains queued requests, then closes
        cluster workers and the socket).  ``spec.request_log`` opens a
        :class:`~repro.serve.requestlog.RequestLog` recording every
        executed batch for :meth:`replay`.
        """
        from ..serve.requestlog import RequestLog
        from ..serve.server import PredictionServer

        request_log = None
        if spec.request_log is not None:
            request_log = RequestLog(
                self.resolve_path(spec.request_log),
                config={"kind": spec.kind, "workers": spec.workers,
                        "fallback": spec.fallback,
                        "registry": spec.registry})
        return PredictionServer(self.engine(spec), host=spec.host,
                                port=spec.port,
                                batch_window_ms=spec.batch_window_ms,
                                max_batch=spec.max_batch,
                                max_queue=spec.max_queue,
                                default_deadline_ms=spec.default_deadline_ms,
                                verbose=spec.verbose,
                                request_log=request_log)

    def replay(self, spec: ServeSpec, path):
        """Re-drive a recorded request log; see
        :func:`repro.serve.requestlog.replay_log`.

        Builds a fresh engine per the spec (cluster when
        ``spec.workers > 1``), replays the log bit-exact against it,
        and returns the :class:`~repro.serve.requestlog.ReplayReport`.
        """
        from ..serve.requestlog import replay_log

        engine = self.engine(spec)
        try:
            return replay_log(self.resolve_path(path), engine.predict_batch)
        finally:
            close = getattr(engine, "close", None)
            if callable(close):
                close()
