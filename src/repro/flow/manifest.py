"""Shared JSON-manifest helpers for on-disk stores.

Both the characterization :class:`~repro.flow.tracestore.TraceStore`
and the :class:`~repro.serve.registry.ModelRegistry` follow the same
layout: a directory of blob files described by one ``manifest.json``
carrying a schema version.  These helpers centralize the two fiddly
parts — tolerating missing/corrupt/old manifests on read, and writing
atomically so concurrent writers can never interleave bytes into a
corrupt file (last rename wins; a lost entry only costs a re-derivable
blob lookup).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict


def stable_fingerprint(data, *, tag: str = "", length: int = 16) -> str:
    """Content hash of a JSON-representable value.

    The canonical form is compact JSON with sorted keys, so two values
    that compare equal after round-tripping through ``json`` always
    fingerprint identically — this is what lets declarative specs key
    the :class:`~repro.flow.tracestore.TraceStore` and the serving
    :class:`~repro.serve.registry.ModelRegistry`.  ``tag`` namespaces
    the hash (e.g. by spec class) so equal payloads of different kinds
    cannot collide.
    """
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
    h = hashlib.sha256()
    h.update(f"{tag};".encode())
    h.update(blob.encode())
    return h.hexdigest()[:length]


def seal_record(record: Dict, *, tag: str, length: int = 16) -> Dict:
    """Return ``record`` with a ``"fp"`` content fingerprint added.

    Used by append-only JSONL logs (the serving request log): each
    line carries the fingerprint of its own payload so a truncated or
    hand-edited record is detected on read instead of silently
    replayed.  The input must not already carry an ``"fp"`` key.
    """
    if "fp" in record:
        raise ValueError("record already sealed (has an 'fp' key)")
    sealed = dict(record)
    sealed["fp"] = stable_fingerprint(record, tag=tag, length=length)
    return sealed


def check_record(record: Dict, *, tag: str) -> Dict:
    """Verify a sealed record's fingerprint; return it without ``fp``.

    Raises :class:`ValueError` on a missing or mismatching
    fingerprint — the caller decides whether that is fatal.
    """
    if not isinstance(record, dict) or "fp" not in record:
        raise ValueError("record carries no fingerprint")
    payload = {k: v for k, v in record.items() if k != "fp"}
    expected = stable_fingerprint(payload, tag=tag,
                                  length=len(record["fp"]))
    if record["fp"] != expected:
        raise ValueError(
            f"record fingerprint mismatch: manifest says "
            f"{record['fp']!r}, payload hashes to {expected!r}")
    return payload


def read_manifest(path: Path, *, version_key: str, version: int,
                  entries_key: str) -> Dict:
    """Load a versioned manifest, or a fresh empty one.

    A missing file, unparsable JSON, or a schema-version mismatch all
    yield ``{version_key: version, entries_key: {}}`` — incompatible
    layouts are ignored rather than misread.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return {version_key: version, entries_key: {}}
    if (not isinstance(manifest, dict)
            or manifest.get(version_key) != version
            or not isinstance(manifest.get(entries_key), dict)):
        return {version_key: version, entries_key: {}}
    return manifest


def write_manifest(path: Path, manifest: Dict) -> None:
    """Atomically replace ``path`` with ``manifest`` as indented JSON.

    The temp name embeds the writer's pid: concurrent writers may still
    lose one another's newest entry (last rename wins) but can never
    corrupt the manifest itself.
    """
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
    tmp.replace(path)
