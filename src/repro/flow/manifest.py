"""Shared JSON-manifest helpers for on-disk stores.

Both the characterization :class:`~repro.flow.tracestore.TraceStore`
and the :class:`~repro.serve.registry.ModelRegistry` follow the same
layout: a directory of blob files described by one ``manifest.json``
carrying a schema version.  Manifests are persisted through
:mod:`repro.flow.durable` — checksummed, generation-counted envelopes
written via tmp + fsync + rename — so a crash mid-write leaves the old
manifest intact and a bit-flipped one is *detected* on read (and
quarantined) instead of silently misread.  Concurrent read-modify-write
cycles are the store's job to serialize (see
:class:`~repro.flow.durable.StoreLock`).
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Callable, Dict, Optional

from .durable import ManifestCorrupt, quarantine, read_envelope, write_envelope


def stable_fingerprint(data, *, tag: str = "", length: int = 16) -> str:
    """Content hash of a JSON-representable value.

    The canonical form is compact JSON with sorted keys, so two values
    that compare equal after round-tripping through ``json`` always
    fingerprint identically — this is what lets declarative specs key
    the :class:`~repro.flow.tracestore.TraceStore` and the serving
    :class:`~repro.serve.registry.ModelRegistry`.  ``tag`` namespaces
    the hash (e.g. by spec class) so equal payloads of different kinds
    cannot collide.
    """
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
    h = hashlib.sha256()
    h.update(f"{tag};".encode())
    h.update(blob.encode())
    return h.hexdigest()[:length]


def seal_record(record: Dict, *, tag: str, length: int = 16) -> Dict:
    """Return ``record`` with a ``"fp"`` content fingerprint added.

    Used by append-only JSONL logs (the serving request log): each
    line carries the fingerprint of its own payload so a truncated or
    hand-edited record is detected on read instead of silently
    replayed.  The input must not already carry an ``"fp"`` key.
    """
    if "fp" in record:
        raise ValueError("record already sealed (has an 'fp' key)")
    sealed = dict(record)
    sealed["fp"] = stable_fingerprint(record, tag=tag, length=length)
    return sealed


def check_record(record: Dict, *, tag: str) -> Dict:
    """Verify a sealed record's fingerprint; return it without ``fp``.

    Raises :class:`ValueError` on a missing or mismatching
    fingerprint — the caller decides whether that is fatal.
    """
    if not isinstance(record, dict) or "fp" not in record:
        raise ValueError("record carries no fingerprint")
    payload = {k: v for k, v in record.items() if k != "fp"}
    expected = stable_fingerprint(payload, tag=tag,
                                  length=len(record["fp"]))
    if record["fp"] != expected:
        raise ValueError(
            f"record fingerprint mismatch: manifest says "
            f"{record['fp']!r}, payload hashes to {expected!r}")
    return payload


def read_manifest(path: Path, *, version_key: str, version: int,
                  entries_key: str,
                  on_corrupt: Optional[Callable[[ManifestCorrupt], Dict]]
                  = None) -> Dict:
    """Load a versioned manifest, or a fresh empty one.

    A missing file or a schema-version mismatch yields
    ``{version_key: version, entries_key: {}}`` — incompatible layouts
    are ignored rather than misread.  A *corrupt* manifest (unparsable,
    or failing its envelope checksum) is handed to ``on_corrupt`` for
    store-specific recovery; without one it is quarantined with a
    warning and read as fresh.
    """
    fresh = {version_key: version, entries_key: {}}
    try:
        manifest, _ = read_envelope(path)
    except FileNotFoundError:
        return fresh
    except ManifestCorrupt as exc:
        if on_corrupt is not None:
            return on_corrupt(exc)
        quarantined = quarantine(path)
        warnings.warn(
            f"corrupt manifest {path} quarantined to "
            f"{quarantined.name if quarantined else '<gone>'}: {exc}",
            RuntimeWarning, stacklevel=2)
        return fresh
    if (not isinstance(manifest, dict)
            or manifest.get(version_key) != version
            or not isinstance(manifest.get(entries_key), dict)):
        return fresh
    return manifest


def write_manifest(path: Path, manifest: Dict, *,
                   site: Optional[str] = None) -> None:
    """Atomically replace ``path`` with ``manifest`` in a checksummed
    envelope (tmp + fsync + rename + dir fsync).

    Concurrent writers can never corrupt the manifest itself; callers
    that must not lose each other's entries serialize the surrounding
    read-modify-write with a :class:`~repro.flow.durable.StoreLock`.
    ``site`` names the fault point armed for crash testing.
    """
    write_envelope(path, manifest, site=site)
