"""Simulated ASIC implementation flow (Fig. 2, left box).

The paper's flow is: HDL -> logic synthesis (Design Compiler) ->
place & route (IC Compiler) -> per-corner STA (PrimeTime) -> SDF files
-> back-annotated gate-level simulation (ModelSim).  Our substitute
keeps every interface: "synthesis" elaborates an FU generator into a
gate netlist, corner "signoff" runs our STA per (V, T) and emits SDF
files, and the simulators consume the same per-gate delay vectors the
SDFs carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.functional_units import FunctionalUnit, build_functional_unit
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import OperatingCondition
from ..timing.sdf import write_sdf
from ..timing.sta import STAResult, run_sta


@dataclass
class ImplementedDesign:
    """An FU after the (simulated) implementation flow.

    Holds the netlist plus per-corner signoff results, mirroring what a
    designer gets back from synthesis + multi-corner STA.
    """

    fu: FunctionalUnit
    library: CellLibrary
    sta: Dict[OperatingCondition, STAResult] = field(default_factory=dict)

    @property
    def netlist(self):
        return self.fu.netlist

    def static_delay(self, condition: OperatingCondition) -> float:
        if condition not in self.sta:
            raise KeyError(f"corner {condition} was not signed off")
        return self.sta[condition].critical_delay

    def corners(self) -> List[OperatingCondition]:
        return list(self.sta)

    def gate_delays(self, condition: OperatingCondition) -> np.ndarray:
        """Per-gate delays at a corner (the SDF contents)."""
        return self.library.gate_delays(self.netlist, condition)

    def emit_sdf(self, directory, conditions: Optional[Sequence] = None
                 ) -> List[Path]:
        """Write one SDF per corner, as PrimeTime would."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for condition in (conditions or self.corners()):
            name = (f"{self.netlist.name}_"
                    f"{condition.voltage:.2f}V_{condition.temperature:g}C.sdf")
            paths.append(write_sdf(self.netlist,
                                   self.gate_delays(condition),
                                   directory / name, condition))
        return paths


def implement(fu_name: str,
              conditions: Sequence[OperatingCondition],
              library: CellLibrary = DEFAULT_LIBRARY,
              **fu_kwargs) -> ImplementedDesign:
    """Run the simulated flow: elaborate the FU and sign off each corner."""
    fu = build_functional_unit(fu_name, **fu_kwargs)
    design = ImplementedDesign(fu=fu, library=library)
    for condition in conditions:
        design.sta[condition] = run_sta(fu.netlist, condition, library)
    return design
