"""DTA campaigns: characterize FUs across workloads and corners.

A campaign runs a simulation backend over operand streams at many
operating conditions, yielding the delay matrices that feed training,
baselines, and every bench.  The unit of work is a
:class:`CampaignJob` — one (FU, stream, corner-grid, library) tuple —
and a :class:`CampaignRunner` executes a batch of jobs:

* results persist in a versioned
  :class:`~repro.flow.tracestore.TraceStore` keyed by netlist, stream,
  corners, **and library**, so reruns are cache hits;
* cache misses fan out over a ``concurrent.futures`` process pool when
  ``n_workers > 1`` — across jobs *and*, for backends that support it,
  across **cycle-range shards within a job**: cycle ``t`` of the DTA
  arrival pass depends only on input rows ``t`` and ``t+1``, so a huge
  stream splits into shards (each receiving rows ``[start, stop + 1]``)
  whose delay matrices are stitched back in submission order — results
  are bit-identical for every ``n_workers``/shard-size configuration;
* the simulation backend is pluggable
  (:func:`repro.sim.engine.get_backend`); the default is the compiled
  level-parallel engine, which is delay-identical to ``levelized`` and
  ``bitpacked``.

:func:`characterize` remains as a thin single-job compatibility shim;
it now emits a :class:`DeprecationWarning` — new code should talk to
:class:`CampaignRunner` directly.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..circuits.netlist import Netlist
from ..sim.dta import DelayTrace
from ..sim.engine import DEFAULT_BACKEND, get_backend
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .tracestore import TraceStore, trace_key

__all__ = [
    "DEFAULT_BACKEND",
    "CampaignJob",
    "CampaignRunner",
    "CampaignStats",
    "MIN_SHARD_CYCLES",
    "characterize",
    "error_free_clocks",
    "plan_cycle_shards",
]

#: Smallest shard the auto planner will produce; jobs below twice this
#: never split (the per-shard overhead of pickling the netlist and
#: re-lowering it in the worker would outweigh the parallelism).
MIN_SHARD_CYCLES = 512


def plan_cycle_shards(n_cycles: int, shard_cycles: Optional[int],
                      n_workers: int = 1) -> List[Tuple[int, int]]:
    """Split a cycle axis into contiguous ``(start, stop)`` ranges.

    Shard ``(start, stop)`` covers cycles ``start .. stop-1`` and must
    be simulated from input rows ``[start, stop + 1)`` — one leading
    state row, exactly like the engines' internal chunking, which is
    why stitching shard delay matrices back in order is bit-identical
    to the unsharded run.

    ``shard_cycles`` is the explicit shard size (``>= 1``); ``None``
    picks one automatically: no splitting for a single worker, else
    roughly two shards per worker, never smaller than
    :data:`MIN_SHARD_CYCLES`.
    """
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    if shard_cycles is None:
        if n_workers <= 1 or n_cycles < 2 * MIN_SHARD_CYCLES:
            return [(0, n_cycles)]
        shard_cycles = max(MIN_SHARD_CYCLES,
                           -(-n_cycles // (2 * n_workers)))
    elif shard_cycles < 1:
        raise ValueError("shard_cycles must be >= 1")
    return [(start, min(start + shard_cycles, n_cycles))
            for start in range(0, n_cycles, shard_cycles)]


@dataclass
class CampaignJob:
    """One characterization work item."""

    fu: FunctionalUnit
    stream: OperandStream
    conditions: Sequence[OperatingCondition]
    library: CellLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    def key(self, delay_model: str = "dta") -> str:
        return trace_key(self.fu, self.stream, list(self.conditions),
                         self.library, delay_model)


@dataclass
class CampaignStats:
    """Bookkeeping from the latest :meth:`CampaignRunner.run`.

    ``job_seconds``/``job_shards`` are keyed by the job's index in the
    ``run()`` batch and only cover cache misses (cached jobs never
    simulate).  ``sim_seconds`` is worker-side simulation time summed
    over shards — with sharding across a pool it exceeds
    ``wall_seconds``, and the ratio is the effective parallel speedup.
    """

    hits: int = 0
    misses: int = 0
    #: wall-clock seconds spent executing the cache-miss batch.
    wall_seconds: float = 0.0
    #: worker-side simulation seconds summed over all shards.
    sim_seconds: float = 0.0
    #: job index -> worker-side simulation seconds for that job.
    job_seconds: Dict[int, float] = field(default_factory=dict)
    #: job index -> number of cycle-range shards it was split into.
    job_shards: Dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def total_shards(self) -> int:
        return sum(self.job_shards.values())


def _run_payload(payload: Tuple[Netlist, np.ndarray, np.ndarray, str]
                 ) -> Tuple[np.ndarray, float]:
    """Worker body: simulate one shard and return (delays, seconds).

    Module-level (and free of FU reference models, which close over
    lambdas) so it pickles across process boundaries.
    """
    netlist, inputs, delay_matrix, backend_name = payload
    start = time.perf_counter()
    backend = get_backend(backend_name)
    delays = backend.run_delays(netlist, inputs, delay_matrix).delays
    return delays, time.perf_counter() - start


class CampaignRunner:
    """Executes batches of characterization jobs with caching.

    Parameters
    ----------
    backend:
        Simulation-backend name (see
        :func:`repro.sim.engine.available_backends`).
    store:
        A :class:`TraceStore`, a directory path for one, or None for
        the default cache directory.  Ignored when ``use_cache`` is
        False.
    n_workers:
        Process-pool width for cache misses; 1 runs inline.
    use_cache:
        Disable all persistence when False.
    shard_cycles:
        Cycle-range shard size for single jobs on backends that
        support it (see
        :attr:`~repro.sim.engine.SimBackend.supports_cycle_sharding`).
        None (default) auto-sizes shards from ``n_workers`` so one
        huge stream saturates the pool; results are bit-identical for
        every shard size and worker count.
    """

    def __init__(self, backend: str = DEFAULT_BACKEND,
                 store: Union[TraceStore, str, Path, None] = None,
                 n_workers: int = 1, use_cache: bool = True,
                 shard_cycles: Optional[int] = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if shard_cycles is not None and shard_cycles < 1:
            raise ValueError("shard_cycles must be >= 1")
        self.backend_name = backend
        self.backend = get_backend(backend)
        if not use_cache:
            self.store: Optional[TraceStore] = None
        elif isinstance(store, TraceStore):
            self.store = store
        else:
            self.store = TraceStore(store)
        self.n_workers = n_workers
        self.shard_cycles = shard_cycles
        self.stats = CampaignStats()

    def run(self, jobs: Sequence[CampaignJob]) -> List[DelayTrace]:
        """Execute a batch of jobs, in order, returning their traces.

        Cached jobs load from the store; the rest are simulated (in
        parallel when ``n_workers > 1``) and persisted.  The result
        list is aligned with ``jobs`` and is bit-identical whatever
        the worker count or shard size — workers only ever compute
        independent jobs or independent cycle ranges of one job.
        """
        jobs = list(jobs)
        delay_model = self.backend.delay_model
        results: List[Optional[DelayTrace]] = [None] * len(jobs)
        pending: List[Tuple[int, CampaignJob, str, np.ndarray]] = []
        self.stats = CampaignStats()

        for i, job in enumerate(jobs):
            inputs = job.stream.bit_matrix(job.fu)
            key = job.key(delay_model)
            if self.store is not None:
                cached = self.store.get(key, list(job.conditions),
                                        inputs=inputs)
                if cached is not None:
                    results[i] = cached
                    self.stats.hits += 1
                    continue
            pending.append((i, job, key, inputs))

        if pending:
            batch_start = time.perf_counter()
            shardable = getattr(self.backend, "supports_cycle_sharding",
                                False)
            # one task per (job, cycle shard); results regrouped below
            tasks: List[Tuple[int, Tuple[Netlist, np.ndarray,
                                         np.ndarray, str]]] = []
            shard_counts: List[int] = []
            for pos, (i, job, key, inputs) in enumerate(pending):
                delay_matrix = job.library.delay_matrix(
                    job.fu.netlist, list(job.conditions))
                n_cycles = inputs.shape[0] - 1
                bounds = (plan_cycle_shards(n_cycles, self.shard_cycles,
                                            self.n_workers)
                          if shardable else [(0, n_cycles)])
                shard_counts.append(len(bounds))
                for start, stop in bounds:
                    tasks.append((pos, (job.fu.netlist,
                                        inputs[start:stop + 1],
                                        delay_matrix, self.backend_name)))

            payloads = [payload for _, payload in tasks]
            if self.n_workers > 1 and len(payloads) > 1:
                workers = min(self.n_workers, len(payloads))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(_run_payload, payloads))
            else:
                outcomes = [_run_payload(p) for p in payloads]

            parts: List[List[np.ndarray]] = [[] for _ in pending]
            seconds = [0.0] * len(pending)
            for (pos, _), (delays, secs) in zip(tasks, outcomes):
                parts[pos].append(delays)  # tasks are in shard order
                seconds[pos] += secs
            for pos, (i, job, key, inputs) in enumerate(pending):
                shards = parts[pos]
                delays = (shards[0] if len(shards) == 1
                          else np.concatenate(shards, axis=1))
                trace = DelayTrace(delays, list(job.conditions),
                                   inputs=inputs)
                if self.store is not None:
                    self.store.put(key, trace, fu_name=job.fu.name,
                                   stream_name=job.stream.name,
                                   library=job.library,
                                   delay_model=delay_model,
                                   backend=self.backend_name)
                results[i] = trace
                self.stats.misses += 1
                self.stats.job_seconds[i] = seconds[pos]
                self.stats.job_shards[i] = shard_counts[pos]
            self.stats.sim_seconds = sum(seconds)
            self.stats.wall_seconds = time.perf_counter() - batch_start
        return results  # type: ignore[return-value]

    def characterize(self, fu: FunctionalUnit, stream: OperandStream,
                     conditions: Sequence[OperatingCondition],
                     library: CellLibrary = DEFAULT_LIBRARY) -> DelayTrace:
        """Single-job convenience wrapper over :meth:`run`."""
        return self.run([CampaignJob(fu, stream, list(conditions),
                                     library)])[0]


def characterize(fu: FunctionalUnit, stream: OperandStream,
                 conditions: Sequence[OperatingCondition],
                 library: CellLibrary = DEFAULT_LIBRARY,
                 cache_dir: Optional[Path] = None,
                 use_cache: bool = True,
                 backend: str = DEFAULT_BACKEND) -> DelayTrace:
    """Dynamic-delay characterization of one FU under one workload.

    Deprecated compatibility shim over :class:`CampaignRunner` —
    returns a :class:`DelayTrace` with shape ``(n_conditions,
    n_cycles)``, transparently cached in the trace store under
    ``cache_dir``.
    """
    warnings.warn(
        "repro.flow.characterize() is deprecated; use "
        "CampaignRunner(...).characterize(...) or CampaignRunner.run()",
        DeprecationWarning, stacklevel=2)
    runner = CampaignRunner(backend=backend, store=cache_dir,
                            use_cache=use_cache)
    return runner.characterize(fu, stream, conditions, library)


def error_free_clocks(trace: DelayTrace) -> Dict[OperatingCondition, float]:
    """Fastest error-free clock per condition (paper Sec. V-A).

    Defined as the maximum dynamic delay observed during offline
    characterization — speeding up beyond it guarantees "the output has
    timing errors".
    """
    return {condition: float(trace.delays[k].max())
            for k, condition in enumerate(trace.conditions)}
