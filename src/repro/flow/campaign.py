"""DTA campaigns: characterize FUs across workloads and corners.

A campaign runs a simulation backend over operand streams at many
operating conditions, yielding the delay matrices that feed training,
baselines, and every bench.  The unit of work is a
:class:`CampaignJob` — one (FU, stream, corner-grid, library) tuple —
and a :class:`CampaignRunner` executes a batch of jobs:

* results persist in a versioned
  :class:`~repro.flow.tracestore.TraceStore` keyed by netlist, stream,
  corners, **and library**, so reruns are cache hits;
* cache misses fan out over a persistent warm
  :class:`~repro.flow.pool.WorkerPool` when ``n_workers > 1`` (a
  per-batch ``concurrent.futures`` pool behind ``persistent=False``) —
  across jobs *and*, within a job, across a 2-D **corner × cycle shard
  grid** (:func:`plan_shards`): cycle ``t`` of the DTA arrival pass
  depends only on input rows ``t`` and ``t+1``, and corner rows of the
  delay matrix are computed independently, so a job splits along
  either axis (corners keep wide grids parallel even when streams are
  short) and the per-shard delay matrices are stitched back into place
  — results are bit-identical for every ``n_workers``/shard-shape/
  pool configuration;
* the auto-sizer is **adaptive**: per-(FU, backend, corner-count)
  throughput observed on earlier runs is persisted in the trace-store
  manifest (:meth:`TraceStore.record_throughput`) and used to pick a
  shard count that equalizes worker runtimes; with no usable history
  (cold store, corrupted section, cache disabled) it falls back to the
  static heuristic; multi-job batches with history for every job are
  planned as one unit (:func:`plan_campaign`), packing the batch-wide
  shard budget onto the longest jobs;
* the simulation backend is pluggable
  (:func:`repro.sim.engine.get_backend`); the default is the compiled
  level-parallel engine, which is delay-identical to ``levelized`` and
  ``bitpacked``.

:func:`characterize` and :meth:`CampaignRunner.characterize` remain as
thin single-job compatibility shims emitting
:class:`DeprecationWarning` — new code should describe runs with
:mod:`repro.api` specs and go through
:meth:`repro.api.Workspace.characterize` (or build
:class:`CampaignJob` batches for :meth:`CampaignRunner.run`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..circuits.netlist import Netlist
from ..sim.dta import DelayTrace
from ..sim.engine import DEFAULT_BACKEND, get_backend
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .durable import StoreLockTimeout
from .pool import JobProgram, WorkerPool
from .tracestore import TraceStore, open_trace_store, trace_key

__all__ = [
    "DEFAULT_BACKEND",
    "CampaignJob",
    "CampaignRunner",
    "CampaignStats",
    "MIN_SHARD_CYCLES",
    "ShardExec",
    "TARGET_SHARD_SECONDS",
    "characterize",
    "error_free_clocks",
    "plan_campaign",
    "plan_cycle_shards",
    "plan_shards",
]

#: Smallest cycle-axis shard the auto planner will produce; jobs below
#: twice this never split along the cycle axis (the per-shard overhead
#: of pickling the netlist and re-lowering it in the worker would
#: outweigh the parallelism).
MIN_SHARD_CYCLES = 512

#: Wall-clock the adaptive auto-sizer aims at per shard.  Shards much
#: shorter than this drown in per-task overhead (netlist pickling +
#: per-process lowering); much longer ones straggle at the end of the
#: pool.  Jobs estimated under twice this never split.
TARGET_SHARD_SECONDS = 2.0

#: A shard grid never exceeds this many shards per worker — beyond it
#: the scheduling slack the extra shards buy is smaller than their
#: fixed costs.
_MAX_SHARDS_PER_WORKER = 4

#: Shard bounds: (corner_start, corner_stop, cycle_start, cycle_stop).
Shard = Tuple[int, int, int, int]


def _even_bounds(length: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``[0, length)`` into ``parts`` near-equal contiguous ranges."""
    parts = max(1, min(parts, length))
    base, extra = divmod(length, parts)
    bounds = []
    start = 0
    for k in range(parts):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _grid_for_target(n_cycles: int, n_corners: int, target: int, *,
                     cycle_shardable: bool = True,
                     corner_shardable: bool = True) -> List[Shard]:
    """A corner × cycle grid of (at most) ``target`` shards.

    Shared gridding policy of the per-job and cross-job planners:
    cycle splits are preferred (corner shards repeat the corner-
    independent settled-value pass) and never go below
    :data:`MIN_SHARD_CYCLES`; floor division keeps the grid at or
    under ``target``.
    """
    max_cycle_splits = (max(1, n_cycles // MIN_SHARD_CYCLES)
                        if cycle_shardable else 1)
    max_corner_splits = n_corners if corner_shardable else 1
    target = min(target, max_cycle_splits * max_corner_splits)
    if target <= 1:
        return [(0, n_corners, 0, n_cycles)]
    cycle_splits = min(target, max_cycle_splits)
    corner_splits = min(max_corner_splits, max(1, target // cycle_splits))
    cycle_bounds = _even_bounds(n_cycles, cycle_splits)
    corner_bounds = _even_bounds(n_corners, corner_splits)
    return [(c0, c1, t0, t1) for c0, c1 in corner_bounds
            for t0, t1 in cycle_bounds]


def plan_shards(n_cycles: int, n_corners: int = 1, *,
                shard_cycles: Optional[int] = None,
                shard_corners: Optional[int] = None,
                n_workers: int = 1,
                corner_cycles_per_s: Optional[float] = None,
                cycle_shardable: bool = True,
                corner_shardable: bool = True) -> List[Shard]:
    """Plan a 2-D corner × cycle shard grid for one job.

    Each shard ``(c0, c1, t0, t1)`` covers corners ``c0 .. c1-1`` of
    cycles ``t0 .. t1-1`` and must be simulated from input rows
    ``[t0, t1 + 1)`` (one leading state row) with delay-matrix rows
    ``c0:c1`` — cycle ``t`` depends only on input rows ``t``/``t+1``
    and corner rows are elementwise-independent, which is why stitching
    the shard delay matrices back into place is bit-identical to the
    unsharded run.  Shards are returned corner-major, cycle-minor.

    Explicit ``shard_cycles``/``shard_corners`` (each ``>= 1``) fix
    the grid pitch along their axis (ragged tails allowed).  With both
    ``None`` the size is picked automatically:

    * a single worker never splits;
    * with usable throughput history (``corner_cycles_per_s``, i.e.
      corner-cycles simulated per worker-second for this FU/backend/
      grid), the shard count targets :data:`TARGET_SHARD_SECONDS` per
      shard, aimed at a multiple of ``n_workers`` so worker runtimes
      equalize (exact whenever a single axis can satisfy it), and
      never above ``4 * n_workers``;
    * cold, the static heuristic aims at roughly two shards per
      worker.

    Cycle splits are preferred (corner shards repeat the corner-
    independent settled-value pass), never go below
    :data:`MIN_SHARD_CYCLES`, and short streams fall back to corner
    splits so wide grids still saturate the pool.
    ``cycle_shardable``/``corner_shardable`` pin the respective axis
    to a single span (backend capability gates).
    """
    if n_cycles < 1:
        raise ValueError("n_cycles must be >= 1")
    if n_corners < 1:
        raise ValueError("n_corners must be >= 1")
    if shard_cycles is not None and shard_cycles < 1:
        raise ValueError("shard_cycles must be >= 1")
    if shard_corners is not None and shard_corners < 1:
        raise ValueError("shard_corners must be >= 1")
    if not cycle_shardable:
        shard_cycles = None
    if not corner_shardable:
        shard_corners = None

    if shard_cycles is not None or shard_corners is not None:
        pitch_t = shard_cycles if shard_cycles is not None else n_cycles
        pitch_c = shard_corners if shard_corners is not None else n_corners
        return [(c0, min(c0 + pitch_c, n_corners),
                 t0, min(t0 + pitch_t, n_cycles))
                for c0 in range(0, n_corners, pitch_c)
                for t0 in range(0, n_cycles, pitch_t)]

    if n_workers <= 1:
        return [(0, n_corners, 0, n_cycles)]

    max_cycle_splits = (max(1, n_cycles // MIN_SHARD_CYCLES)
                        if cycle_shardable else 1)
    max_corner_splits = n_corners if corner_shardable else 1

    if corner_cycles_per_s is not None and corner_cycles_per_s > 0 \
            and np.isfinite(corner_cycles_per_s):
        est_seconds = n_cycles * n_corners / corner_cycles_per_s
        if est_seconds < 2 * TARGET_SHARD_SECONDS:
            target = 1 if est_seconds < TARGET_SHARD_SECONDS else n_workers
        else:
            target = min(_MAX_SHARDS_PER_WORKER * n_workers,
                         max(1, round(est_seconds / TARGET_SHARD_SECONDS)))
        if target > 1:  # aim at a multiple of n_workers so runtimes equalize
            target = -(-target // n_workers) * n_workers
        # floor division inside the gridder keeps the grid at or under
        # target (the hard shards-per-worker cap); a 2-D grid cannot
        # always hit an exact worker multiple, undershooting only costs
        # a little slack
        return _grid_for_target(n_cycles, n_corners, target,
                                cycle_shardable=cycle_shardable,
                                corner_shardable=corner_shardable)

    # static heuristic (cold): legacy fixed-pitch cycle shards, corner
    # splits only when the cycle axis alone cannot feed the pool
    if cycle_shardable and n_cycles >= 2 * MIN_SHARD_CYCLES:
        pitch = max(MIN_SHARD_CYCLES, -(-n_cycles // (2 * n_workers)))
        cycle_bounds = [(t0, min(t0 + pitch, n_cycles))
                        for t0 in range(0, n_cycles, pitch)]
    else:
        cycle_bounds = [(0, n_cycles)]
    need = -(-2 * n_workers // len(cycle_bounds))
    corner_splits = (min(max_corner_splits, need)
                     if len(cycle_bounds) < 2 * n_workers else 1)
    corner_bounds = _even_bounds(n_corners, corner_splits)
    return [(c0, c1, t0, t1) for c0, c1 in corner_bounds
            for t0, t1 in cycle_bounds]


def plan_cycle_shards(n_cycles: int, shard_cycles: Optional[int],
                      n_workers: int = 1) -> List[Tuple[int, int]]:
    """Cycle-only shard plan — thin wrapper over :func:`plan_shards`.

    Retained for callers that shard a single-corner stream; returns
    the ``(cycle_start, cycle_stop)`` pairs of the 2-D plan with one
    corner.
    """
    return [(t0, t1) for _, _, t0, t1 in
            plan_shards(n_cycles, 1, shard_cycles=shard_cycles,
                        n_workers=n_workers)]


def plan_campaign(jobs: Sequence[Tuple[int, int]], n_workers: int, *,
                  corner_cycles_per_s: Sequence[Optional[float]],
                  cycle_shardable: bool = True,
                  corner_shardable: bool = True) -> List[List[Shard]]:
    """Cross-job packed shard plans for a whole campaign batch.

    ``jobs`` lists each pending job's ``(n_cycles, n_corners)`` grid;
    ``corner_cycles_per_s`` its persisted throughput history (the
    adaptive planner's EWMA).  With usable history for *every* job the
    batch is planned as one unit: the estimated total runtime sets a
    batch-wide shard budget targeting :data:`TARGET_SHARD_SECONDS` per
    shard (capped at ``4 * n_workers``, floored so an estimated-busy
    pool has at least one shard per worker), which is then apportioned
    greedily — always splitting the job with the largest remaining
    per-shard estimate — so short jobs stay whole and long jobs absorb
    the splits.  A batch estimated under ``2 *
    TARGET_SHARD_SECONDS`` never splits at all: the jobs themselves
    are the parallelism.

    Any job without usable history falls back to per-job
    :func:`plan_shards` planning (which handles its own cold
    heuristic), keeping the two planners' behavior continuous.
    Returns one shard list per job, aligned with ``jobs``.
    """
    grids = [(int(t), int(c)) for t, c in jobs]
    for t, c in grids:
        if t < 1:
            raise ValueError("n_cycles must be >= 1")
        if c < 1:
            raise ValueError("n_corners must be >= 1")
    cps = list(corner_cycles_per_s)
    if len(cps) != len(grids):
        raise ValueError("corner_cycles_per_s must align with jobs")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if n_workers == 1:
        return [[(0, c, 0, t)] for t, c in grids]
    if not all(v is not None and v > 0 and np.isfinite(v) for v in cps):
        return [plan_shards(t, c, n_workers=n_workers,
                            corner_cycles_per_s=v,
                            cycle_shardable=cycle_shardable,
                            corner_shardable=corner_shardable and c > 1)
                for (t, c), v in zip(grids, cps)]

    est = [t * c / v for (t, c), v in zip(grids, cps)]
    total = float(sum(est))
    caps = []
    for t, c in grids:
        max_cy = max(1, t // MIN_SHARD_CYCLES) if cycle_shardable else 1
        max_co = c if corner_shardable else 1
        caps.append(max_cy * max_co)
    counts = [1] * len(grids)
    if total >= 2 * TARGET_SHARD_SECONDS:
        target_total = min(_MAX_SHARDS_PER_WORKER * n_workers,
                           max(1, round(total / TARGET_SHARD_SECONDS)))
        target_total = max(target_total, min(n_workers, sum(caps)))
        while sum(counts) < target_total:
            best, best_load = -1, 0.0
            for j in range(len(grids)):
                if counts[j] >= caps[j]:
                    continue
                load = est[j] / counts[j]
                if load > best_load:
                    best, best_load = j, load
            if best < 0:
                break  # every job at its axis cap
            counts[best] += 1
    return [_grid_for_target(t, c, counts[j],
                             cycle_shardable=cycle_shardable,
                             corner_shardable=corner_shardable)
            for j, (t, c) in enumerate(grids)]


@dataclass
class CampaignJob:
    """One characterization work item."""

    fu: FunctionalUnit
    stream: OperandStream
    conditions: Sequence[OperatingCondition]
    library: CellLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    def key(self, delay_model: str = "dta") -> str:
        return trace_key(self.fu, self.stream, list(self.conditions),
                         self.library, delay_model)


@dataclass
class ShardExec:
    """Execution record of one shard (an entry of
    :attr:`CampaignStats.shard_log`)."""

    #: job index in the ``run()`` batch.
    job: int
    #: shard bounds (corner_start, corner_stop, cycle_start, cycle_stop).
    shard: Shard
    #: worker-side simulation seconds for this shard.
    seconds: float
    #: whether the executing worker already held the netlist's compiled
    #: program (persistent-pool runs only; None on the legacy/inline
    #: paths, which cannot observe worker state).
    warm: Optional[bool] = None
    #: pool slot that ran the shard (persistent-pool runs only).
    worker: Optional[int] = None


@dataclass
class CampaignStats:
    """Bookkeeping from the latest :meth:`CampaignRunner.run`.

    Per-job dicts are keyed by the job's index in the ``run()`` batch
    and only cover cache misses (cached jobs never simulate).
    ``sim_seconds`` is worker-side simulation time summed over shards —
    with sharding across a pool it exceeds ``wall_seconds``, and the
    ratio is the effective parallel speedup.
    """

    hits: int = 0
    misses: int = 0
    #: wall-clock seconds spent executing the cache-miss batch.
    wall_seconds: float = 0.0
    #: worker-side simulation seconds summed over all shards.
    sim_seconds: float = 0.0
    #: job index -> worker-side simulation seconds for that job.
    job_seconds: Dict[int, float] = field(default_factory=dict)
    #: job index -> number of shards in the job's corner × cycle grid.
    job_shards: Dict[int, int] = field(default_factory=dict)
    #: job index -> simulated cycles (the stream's cycle count).
    job_cycles: Dict[int, int] = field(default_factory=dict)
    #: job index -> corner-grid size.
    job_corners: Dict[int, int] = field(default_factory=dict)
    #: job index -> (corner_splits, cycle_splits) of the planned grid.
    job_grids: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: per-shard execution records, in dispatch order.
    shard_log: List[ShardExec] = field(default_factory=list)
    #: True when the batch was planned by the cross-job packer
    #: (:func:`plan_campaign`) instead of per-job :func:`plan_shards`.
    packed: bool = False
    #: shards skipped because a journaled checkpoint from an earlier
    #: (killed) run already held their results.
    resumed_shards: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def total_shards(self) -> int:
        return sum(self.job_shards.values())

    def job_cycles_per_s(self, i: int) -> Optional[float]:
        """Effective cycles/s of job ``i`` (simulated cycles over
        worker-side sim seconds), or None for cached/instant jobs."""
        seconds = self.job_seconds.get(i)
        cycles = self.job_cycles.get(i)
        if not seconds or not cycles:
            return None
        return cycles / seconds


def _run_payload(payload: Tuple[Netlist, np.ndarray, np.ndarray, str,
                                Optional[int], Optional[int]]
                 ) -> Tuple[np.ndarray, float]:
    """Worker body: simulate one shard and return (delays, seconds).

    Module-level (and free of FU reference models, which close over
    lambdas) so it pickles across process boundaries.
    """
    netlist, inputs, delay_matrix, backend_name, chunk_cycles, \
        threads = payload
    start = time.perf_counter()
    backend = get_backend(backend_name)
    delays = backend.run_delays(netlist, inputs, delay_matrix,
                                chunk_cycles=chunk_cycles,
                                threads=threads).delays
    return delays, time.perf_counter() - start


class CampaignRunner:
    """Executes batches of characterization jobs with caching.

    Parameters
    ----------
    backend:
        Simulation-backend name (see
        :func:`repro.sim.engine.available_backends`).
    store:
        A :class:`TraceStore`, a directory path for one, or None for
        the default cache directory.  Ignored when ``use_cache`` is
        False.  Besides trace caching, the store's manifest carries
        the throughput history that feeds the adaptive shard planner.
    n_workers:
        Process-pool width for cache misses; 1 runs inline.
    use_cache:
        Disable all persistence (and the adaptive history) when False.
    shard_cycles / shard_corners:
        Explicit shard-grid pitch along the cycle / corner axis for
        single jobs, on backends whose capability flags allow it (see
        :class:`~repro.sim.engine.SimBackend`).  None (default) sizes
        the grid automatically — from throughput history when the
        store has seen this (FU, backend, corner-count) before, else
        statically from ``n_workers``.  Results are bit-identical for
        every shard shape and worker count.
    chunk_cycles:
        Explicit cycle-axis working-set chunk forwarded to the
        backend's ``run_delays`` (backends with
        ``supports_chunking``).  None lets the backend pick a
        cache-sized default; never affects results.
    adaptive_history:
        When False the shard auto-sizer ignores any persisted
        throughput history (and records none), always planning with
        the static heuristic — for reproducible shard grids across
        machines.
    persistent:
        Execute multi-worker batches on a persistent
        :class:`~repro.flow.pool.WorkerPool` (warm program caches,
        shared-memory result return) instead of a per-batch
        ``ProcessPoolExecutor``.  The pool outlives ``run()`` calls —
        use ``close()`` (or the runner as a context manager, or a
        pool-owning :class:`~repro.api.Workspace`) to reap workers.
        False restores the legacy executor path.  Never affects
        results.
    threads:
        In-worker thread count for the arrival kernel, forwarded to
        the backend's ``run_delays`` (backends with
        ``supports_threads``); 1 (default) runs single-threaded.
        Never affects results.
    pack_jobs:
        Plan multi-job batches as one unit with :func:`plan_campaign`
        (cross-job shard packing) whenever every pending job has
        usable throughput history; False always plans per job.
    pool:
        An externally owned :class:`~repro.flow.pool.WorkerPool` to
        run on (e.g. shared across runners by a Workspace).  The
        runner never closes a pool it was given; without one it
        lazily creates and owns a pool sized ``n_workers``.
    checkpoint:
        Journal completed shards of multi-shard jobs through the
        store (see :meth:`TraceStore.record_journal_shard`) so a
        killed campaign's rerun resumes instead of re-simulating
        (``CampaignStats.resumed_shards``).  Requires a store; never
        affects results.  ``REPRO_CAMPAIGN_CHECKPOINT=0`` force-
        disables it for benchmarking the journal overhead away.
    """

    def __init__(self, backend: str = DEFAULT_BACKEND,
                 store: Union[TraceStore, str, Path, None] = None,
                 n_workers: int = 1, use_cache: bool = True,
                 shard_cycles: Optional[int] = None,
                 shard_corners: Optional[int] = None,
                 chunk_cycles: Optional[int] = None,
                 adaptive_history: bool = True,
                 persistent: bool = True,
                 threads: int = 1,
                 pack_jobs: bool = True,
                 pool: Optional[WorkerPool] = None,
                 checkpoint: bool = True) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if shard_cycles is not None and shard_cycles < 1:
            raise ValueError("shard_cycles must be >= 1")
        if shard_corners is not None and shard_corners < 1:
            raise ValueError("shard_corners must be >= 1")
        if chunk_cycles is not None and chunk_cycles < 1:
            raise ValueError("chunk_cycles must be >= 1")
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.backend_name = backend
        self.backend = get_backend(backend)
        if chunk_cycles is not None and not self.backend.supports_chunking:
            raise ValueError(
                f"backend {backend!r} does not honor chunk_cycles "
                f"(supports_chunking=False)")
        if threads > 1 and not self.backend.supports_threads:
            raise ValueError(
                f"backend {backend!r} does not honor threads "
                f"(supports_threads=False)")
        if not use_cache:
            self.store = None
        elif store is None or isinstance(store, (str, Path)):
            # path-like (or None: the default cache dir) — URL strings
            # resolve to a RemoteTraceStore against a store service
            self.store = open_trace_store(store)
        else:
            self.store = store  # any duck-typed store object as-is
        self.n_workers = n_workers
        self.shard_cycles = shard_cycles
        self.shard_corners = shard_corners
        self.chunk_cycles = chunk_cycles
        self.adaptive_history = adaptive_history
        self.persistent = persistent
        self.threads = threads
        self.pack_jobs = pack_jobs
        self.checkpoint = (checkpoint and os.environ.get(
            "REPRO_CAMPAIGN_CHECKPOINT", "1") != "0")
        self._pool = pool
        self._owns_pool = False
        self.stats = CampaignStats()

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(self.n_workers)
            self._owns_pool = True
        return self._pool

    def close(self) -> None:
        """Reap the runner-owned worker pool, if any (idempotent).

        Externally supplied pools are left running — their owner
        closes them.
        """
        if self._owns_pool and self._pool is not None:
            self._pool.close()
        self._pool = None
        self._owns_pool = False

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _plan_job(self, n_cycles: int, n_corners: int,
                  fu_name: str) -> List[Shard]:
        """Shard plan for one job, honoring backend capabilities and
        any persisted throughput history (static fallback when cold)."""
        cycle_ok = self.backend.supports_cycle_sharding
        corner_ok = (self.backend.supports_corner_sharding
                     and n_corners > 1)
        history = None
        if self.store is not None and self.adaptive_history \
                and self.shard_cycles is None \
                and self.shard_corners is None:
            history = self.store.get_throughput(
                fu_name, self.backend_name, n_corners)
        return plan_shards(
            n_cycles, n_corners,
            shard_cycles=self.shard_cycles,
            shard_corners=self.shard_corners,
            n_workers=self.n_workers,
            corner_cycles_per_s=history,
            cycle_shardable=cycle_ok,
            corner_shardable=corner_ok)

    def _plan_batch(self, grids: List[Tuple[int, int]],
                    fu_names: List[str]
                    ) -> Tuple[List[List[Shard]], bool]:
        """Shard plans for every pending job: cross-job packed
        (:func:`plan_campaign`) when enabled and every job has usable
        throughput history, per-job :func:`plan_shards` otherwise.
        Returns ``(plans, packed)``."""
        if (self.pack_jobs and len(grids) > 1 and self.n_workers > 1
                and self.shard_cycles is None
                and self.shard_corners is None
                and self.adaptive_history and self.store is not None):
            history = self.store.get_throughput_many(
                [(name, self.backend_name, c)
                 for name, (_, c) in zip(fu_names, grids)])
            if all(h is not None for h in history):
                plans = plan_campaign(
                    grids, self.n_workers,
                    corner_cycles_per_s=history,
                    cycle_shardable=self.backend.supports_cycle_sharding,
                    corner_shardable=self.backend.supports_corner_sharding)
                return plans, True
        return ([self._plan_job(t, c, name)
                 for (t, c), name in zip(grids, fu_names)], False)

    def run(self, jobs: Sequence[CampaignJob]) -> List[DelayTrace]:
        """Execute a batch of jobs, in order, returning their traces.

        Cached jobs load from the store; the rest are simulated (in
        parallel when ``n_workers > 1``) and persisted.  The result
        list is aligned with ``jobs`` and is bit-identical whatever
        the worker count or shard grid — workers only ever compute
        independent jobs, independent cycle ranges, or independent
        corner rows.
        """
        jobs = list(jobs)
        delay_model = self.backend.delay_model
        results: List[Optional[DelayTrace]] = [None] * len(jobs)
        pending: List[Tuple[int, CampaignJob, str, np.ndarray]] = []
        self.stats = CampaignStats()

        for i, job in enumerate(jobs):
            inputs = job.stream.bit_matrix(job.fu)
            key = job.key(delay_model)
            if self.store is not None:
                cached = self.store.get(key, list(job.conditions),
                                        inputs=inputs)
                if cached is not None:
                    results[i] = cached
                    self.stats.hits += 1
                    # a journal left by a run killed after the blob
                    # landed (but before its own cleanup) is stale now
                    self.store.clear_journal(key)
                    continue
            pending.append((i, job, key, inputs))

        if pending:
            batch_start = time.perf_counter()
            delay_matrices: List[np.ndarray] = []
            grids: List[Tuple[int, int]] = []  # (n_cycles, n_corners)
            for i, job, key, inputs in pending:
                delay_matrix = job.library.delay_matrix(
                    job.fu.netlist, list(job.conditions))
                delay_matrices.append(delay_matrix)
                grids.append((inputs.shape[0] - 1, delay_matrix.shape[0]))
            job_plans, self.stats.packed = self._plan_batch(
                grids, [job.fu.name for _, job, _, _ in pending])

            # checkpoint/resume: a killed campaign's rerun reuses the
            # journaled shard plan (a fresh plan need not tile the same
            # way) and skips the shards whose parts survived
            checkpointing = self.store is not None and self.checkpoint
            done_parts: List[List[Tuple[Shard, np.ndarray]]] = [
                [] for _ in pending]
            if checkpointing:
                for pos, (i, job, key, inputs) in enumerate(pending):
                    n_cycles, n_corners = grids[pos]
                    state = self.store.load_journal(
                        key, backend=self.backend_name,
                        n_corners=n_corners, n_cycles=n_cycles)
                    if state is not None:
                        job_plans[pos], done_parts[pos] = state
            self.stats.resumed_shards = sum(len(d) for d in done_parts)
            done_sets = [{s for s, _ in d} for d in done_parts]

            # one task per (job, not-yet-done shard); stitched below
            tasks: List[Tuple[int, int, Shard]] = []  # (pos, shard_idx, shard)
            for pos, shards in enumerate(job_plans):
                for s_idx, shard in enumerate(shards):
                    if shard not in done_sets[pos]:
                        tasks.append((pos, s_idx, shard))

            parts: List[List[Optional[np.ndarray]]] = [
                [None] * len(shards) for shards in job_plans]
            for pos, done in enumerate(done_parts):
                for shard, part in done:
                    parts[pos][job_plans[pos].index(shard)] = part
            whole: List[Optional[np.ndarray]] = [None] * len(pending)
            seconds = [0.0] * len(pending)
            multi = self.n_workers > 1 and len(tasks) > 1

            # journal only multi-shard jobs: a single-shard job's
            # checkpoint could never save work over plain re-simulation
            journal_pos = {pos for pos in range(len(pending))
                           if checkpointing and len(job_plans[pos]) > 1}

            def journal_shard(pos: int, shard: Shard,
                              delays: Optional[np.ndarray]) -> None:
                if pos not in journal_pos or delays is None:
                    return
                _, _, key_, _ = pending[pos]
                n_cycles_, n_corners_ = grids[pos]
                try:
                    self.store.record_journal_shard(
                        key_, plan=job_plans[pos], shard=shard,
                        delays=delays, backend=self.backend_name,
                        n_corners=n_corners_, n_cycles=n_cycles_)
                except StoreLockTimeout:
                    pass  # progress not saved; the run itself continues

            if multi and self.persistent:
                self._run_on_pool(pending, delay_matrices, tasks,
                                  parts, whole, seconds,
                                  journal_shard if journal_pos else None)
            else:
                payloads = []
                for pos, _, (c0, c1, t0, t1) in tasks:
                    _, job, _, inputs = pending[pos]
                    payloads.append((job.fu.netlist, inputs[t0:t1 + 1],
                                     delay_matrices[pos][c0:c1],
                                     self.backend_name, self.chunk_cycles,
                                     self.threads))

                def record(task: Tuple[int, int, Shard],
                           outcome: Tuple[np.ndarray, float]) -> None:
                    pos, s_idx, shard = task
                    delays, secs = outcome
                    parts[pos][s_idx] = delays
                    seconds[pos] += secs
                    self.stats.shard_log.append(ShardExec(
                        job=pending[pos][0], shard=shard, seconds=secs))
                    journal_shard(pos, shard, delays)

                if multi:
                    workers = min(self.n_workers, len(payloads))
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        # consume lazily so each shard journals as it
                        # lands, not after the whole batch
                        for task, outcome in zip(
                                tasks, pool.map(_run_payload, payloads)):
                            record(task, outcome)
                else:
                    for task, payload in zip(tasks, payloads):
                        record(task, _run_payload(payload))

            for pos, (i, job, key, inputs) in enumerate(pending):
                shards = job_plans[pos]
                n_cycles, n_corners = grids[pos]
                if whole[pos] is not None:
                    delays = whole[pos]
                    # the pool's stitched shm buffer only saw dispatched
                    # shards; resumed regions come from the journal
                    for (c0, c1, t0, t1), part in done_parts[pos]:
                        delays[c0:c1, t0:t1] = part
                elif len(shards) == 1:
                    delays = parts[pos][0]
                else:
                    delays = np.empty((n_corners, n_cycles),
                                      dtype=parts[pos][0].dtype)
                    for (c0, c1, t0, t1), part in zip(shards, parts[pos]):
                        delays[c0:c1, t0:t1] = part
                trace = DelayTrace(delays, list(job.conditions),
                                   inputs=inputs)
                if self.store is not None:
                    self.store.put(key, trace, fu_name=job.fu.name,
                                   stream_name=job.stream.name,
                                   library=job.library,
                                   delay_model=delay_model,
                                   backend=self.backend_name)
                    if checkpointing and (pos in journal_pos
                                          or done_parts[pos]):
                        self.store.clear_journal(key)
                    if seconds[pos] > 0 and self.adaptive_history:
                        self.store.record_throughput(
                            job.fu.name, self.backend_name, n_corners,
                            n_cycles * n_corners / seconds[pos])
                results[i] = trace
                self.stats.misses += 1
                self.stats.job_seconds[i] = seconds[pos]
                self.stats.job_shards[i] = len(shards)
                self.stats.job_cycles[i] = n_cycles
                self.stats.job_corners[i] = n_corners
                self.stats.job_grids[i] = (
                    len({(c0, c1) for c0, c1, _, _ in shards}),
                    len({(t0, t1) for _, _, t0, t1 in shards}))
            self.stats.sim_seconds = sum(seconds)
            self.stats.wall_seconds = time.perf_counter() - batch_start
        return results  # type: ignore[return-value]

    def _run_on_pool(self, pending, delay_matrices, tasks, parts, whole,
                     seconds, journal=None) -> None:
        """Execute the task list on the persistent warm pool.

        Registers each pending job once (content-fingerprinted so
        reruns hit the workers' warm caches), dispatches shard
        descriptors longest-first (LPT keeps stragglers off the tail),
        and collects results into ``parts``/``whole``/``seconds`` —
        exactly the structures the legacy path fills, so stitching is
        shared.  ``journal(pos, shard, delays)`` fires as each shard
        completes (checkpoint/resume journaling) — on the
        shared-memory return path it receives a live view into the
        job's stitched segment.
        """
        pool = self._ensure_pool()
        progs: Dict[str, JobProgram] = {}
        pos_key: List[str] = []
        nl_cache: Dict[int, Tuple[str, bytes]] = {}
        for pos, (i, job, key, inputs) in enumerate(pending):
            netlist = job.fu.netlist
            cached = nl_cache.get(id(netlist))
            if cached is None:
                blob = pickle.dumps(netlist,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                cached = (hashlib.sha1(blob).hexdigest(), blob)
                nl_cache[id(netlist)] = cached
            nl_key, nl_bytes = cached
            job_key = (f"{key}:{self.backend_name}:"
                       f"{self.chunk_cycles}:{self.threads}")
            pos_key.append(job_key)
            if job_key not in progs:  # duplicate jobs share one program
                progs[job_key] = JobProgram(
                    netlist=netlist, netlist_key=nl_key,
                    inputs=inputs, delay_matrix=delay_matrices[pos],
                    backend=self.backend_name,
                    chunk_cycles=self.chunk_cycles,
                    threads=self.threads,
                    netlist_bytes=nl_bytes)

        # longest-processing-time-first dispatch order
        order = sorted(
            range(len(tasks)),
            key=lambda k: -((tasks[k][2][1] - tasks[k][2][0])
                            * (tasks[k][2][3] - tasks[k][2][2])))
        on_result = None
        if journal is not None:
            def on_result(j, tres, delays):
                pos, _, shard = tasks[order[j]]
                journal(pos, shard, delays)
        res = pool.run_tasks(progs,
                             [(pos_key[tasks[k][0]], tasks[k][2])
                              for k in order],
                             on_result=on_result)
        for j, k in enumerate(order):
            pos, s_idx, shard = tasks[k]
            tr = res.tasks[j]
            parts[pos][s_idx] = tr.delays
            seconds[pos] += tr.seconds
            self.stats.shard_log.append(ShardExec(
                job=pending[pos][0], shard=shard, seconds=tr.seconds,
                warm=tr.warm, worker=tr.worker))
        for pos, job_key in enumerate(pos_key):
            stitched = res.job_delays.get(job_key)
            if stitched is not None:
                whole[pos] = stitched

    def characterize(self, fu: FunctionalUnit, stream: OperandStream,
                     conditions: Sequence[OperatingCondition],
                     library: CellLibrary = DEFAULT_LIBRARY) -> DelayTrace:
        """Deprecated single-job wrapper over :meth:`run`.

        Use :meth:`repro.api.Workspace.characterize` for spec-driven
        runs, or ``run([CampaignJob(...)])[0]`` directly.
        """
        warnings.warn(
            "CampaignRunner.characterize() is deprecated; use "
            "repro.api.Workspace.characterize(spec) or "
            "CampaignRunner.run([CampaignJob(...)])[0]",
            DeprecationWarning, stacklevel=2)
        return self.run([CampaignJob(fu, stream, list(conditions),
                                     library)])[0]


def characterize(fu: FunctionalUnit, stream: OperandStream,
                 conditions: Sequence[OperatingCondition],
                 library: CellLibrary = DEFAULT_LIBRARY,
                 cache_dir: Optional[Path] = None,
                 use_cache: bool = True,
                 backend: str = DEFAULT_BACKEND) -> DelayTrace:
    """Dynamic-delay characterization of one FU under one workload.

    Deprecated compatibility shim over :class:`CampaignRunner` —
    returns a :class:`DelayTrace` with shape ``(n_conditions,
    n_cycles)``, transparently cached in the trace store under
    ``cache_dir``.
    """
    warnings.warn(
        "repro.flow.characterize() is deprecated; use "
        "repro.api.Workspace.characterize(spec) (or, for ad-hoc jobs, "
        "CampaignRunner.run([CampaignJob(...)])[0])",
        DeprecationWarning, stacklevel=2)
    runner = CampaignRunner(backend=backend, store=cache_dir,
                            use_cache=use_cache)
    return runner.run([CampaignJob(fu, stream, list(conditions),
                                   library)])[0]


def error_free_clocks(trace: DelayTrace) -> Dict[OperatingCondition, float]:
    """Fastest error-free clock per condition (paper Sec. V-A).

    Defined as the maximum dynamic delay observed during offline
    characterization — speeding up beyond it guarantees "the output has
    timing errors".
    """
    return {condition: float(trace.delays[k].max())
            for k, condition in enumerate(trace.conditions)}
