"""DTA campaigns: characterize FUs across workloads and corners.

A campaign runs a simulation backend over operand streams at many
operating conditions, yielding the delay matrices that feed training,
baselines, and every bench.  The unit of work is a
:class:`CampaignJob` — one (FU, stream, corner-grid, library) tuple —
and a :class:`CampaignRunner` executes a batch of jobs:

* results persist in a versioned
  :class:`~repro.flow.tracestore.TraceStore` keyed by netlist, stream,
  corners, **and library**, so reruns are cache hits;
* cache misses fan out over a ``concurrent.futures`` process pool when
  ``n_workers > 1`` (each worker receives only the picklable job core:
  netlist + input bits + delay matrix + backend name);
* the simulation backend is pluggable
  (:func:`repro.sim.engine.get_backend`); the default is the
  bit-packed engine, which is delay-identical to ``levelized``.

:func:`characterize` remains as a thin single-job compatibility shim;
it now emits a :class:`DeprecationWarning` — new code should talk to
:class:`CampaignRunner` directly.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..circuits.netlist import Netlist
from ..sim.dta import DelayTrace
from ..sim.engine import get_backend
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .tracestore import TraceStore, default_cache_dir, trace_key

#: Backend used when callers do not ask for a specific one.  The
#: bit-packed engine produces delays bit-identical to ``levelized``
#: (asserted by tests/sim/test_engine.py) at lower cost.
DEFAULT_BACKEND = "bitpacked"


@dataclass
class CampaignJob:
    """One characterization work item."""

    fu: FunctionalUnit
    stream: OperandStream
    conditions: Sequence[OperatingCondition]
    library: CellLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    def key(self, delay_model: str = "dta") -> str:
        return trace_key(self.fu, self.stream, list(self.conditions),
                         self.library, delay_model)


@dataclass
class CampaignStats:
    """Bookkeeping from the latest :meth:`CampaignRunner.run`."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses


def _run_payload(payload: Tuple[Netlist, np.ndarray, np.ndarray, str]
                 ) -> np.ndarray:
    """Worker body: simulate one job core and return its delay matrix.

    Module-level (and free of FU reference models, which close over
    lambdas) so it pickles across process boundaries.
    """
    netlist, inputs, delay_matrix, backend_name = payload
    backend = get_backend(backend_name)
    return backend.run_delays(netlist, inputs, delay_matrix).delays


class CampaignRunner:
    """Executes batches of characterization jobs with caching.

    Parameters
    ----------
    backend:
        Simulation-backend name (see
        :func:`repro.sim.engine.available_backends`).
    store:
        A :class:`TraceStore`, a directory path for one, or None for
        the default cache directory.  Ignored when ``use_cache`` is
        False.
    n_workers:
        Process-pool width for cache misses; 1 runs inline.
    use_cache:
        Disable all persistence when False.
    """

    def __init__(self, backend: str = DEFAULT_BACKEND,
                 store: Union[TraceStore, str, Path, None] = None,
                 n_workers: int = 1, use_cache: bool = True) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.backend_name = backend
        self.backend = get_backend(backend)
        if not use_cache:
            self.store: Optional[TraceStore] = None
        elif isinstance(store, TraceStore):
            self.store = store
        else:
            self.store = TraceStore(store)
        self.n_workers = n_workers
        self.stats = CampaignStats()

    def run(self, jobs: Sequence[CampaignJob]) -> List[DelayTrace]:
        """Execute a batch of jobs, in order, returning their traces.

        Cached jobs load from the store; the rest are simulated (in
        parallel when ``n_workers > 1``) and persisted.  The result
        list is aligned with ``jobs`` and is identical whatever the
        worker count — workers only ever compute independent jobs.
        """
        jobs = list(jobs)
        delay_model = self.backend.delay_model
        results: List[Optional[DelayTrace]] = [None] * len(jobs)
        pending: List[Tuple[int, CampaignJob, str, np.ndarray]] = []
        self.stats = CampaignStats()

        for i, job in enumerate(jobs):
            inputs = job.stream.bit_matrix(job.fu)
            key = job.key(delay_model)
            if self.store is not None:
                cached = self.store.get(key, list(job.conditions),
                                        inputs=inputs)
                if cached is not None:
                    results[i] = cached
                    self.stats.hits += 1
                    continue
            pending.append((i, job, key, inputs))

        if pending:
            payloads = [
                (job.fu.netlist, inputs,
                 job.library.delay_matrix(job.fu.netlist,
                                          list(job.conditions)),
                 self.backend_name)
                for _, job, _, inputs in pending
            ]
            if self.n_workers > 1 and len(pending) > 1:
                workers = min(self.n_workers, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    delay_mats = list(pool.map(_run_payload, payloads))
            else:
                delay_mats = [_run_payload(p) for p in payloads]
            for (i, job, key, inputs), delays in zip(pending, delay_mats):
                trace = DelayTrace(delays, list(job.conditions),
                                   inputs=inputs)
                if self.store is not None:
                    self.store.put(key, trace, fu_name=job.fu.name,
                                   stream_name=job.stream.name,
                                   library=job.library,
                                   delay_model=delay_model,
                                   backend=self.backend_name)
                results[i] = trace
                self.stats.misses += 1
        return results  # type: ignore[return-value]

    def characterize(self, fu: FunctionalUnit, stream: OperandStream,
                     conditions: Sequence[OperatingCondition],
                     library: CellLibrary = DEFAULT_LIBRARY) -> DelayTrace:
        """Single-job convenience wrapper over :meth:`run`."""
        return self.run([CampaignJob(fu, stream, list(conditions),
                                     library)])[0]


def characterize(fu: FunctionalUnit, stream: OperandStream,
                 conditions: Sequence[OperatingCondition],
                 library: CellLibrary = DEFAULT_LIBRARY,
                 cache_dir: Optional[Path] = None,
                 use_cache: bool = True,
                 backend: str = DEFAULT_BACKEND) -> DelayTrace:
    """Dynamic-delay characterization of one FU under one workload.

    Deprecated compatibility shim over :class:`CampaignRunner` —
    returns a :class:`DelayTrace` with shape ``(n_conditions,
    n_cycles)``, transparently cached in the trace store under
    ``cache_dir``.
    """
    warnings.warn(
        "repro.flow.characterize() is deprecated; use "
        "CampaignRunner(...).characterize(...) or CampaignRunner.run()",
        DeprecationWarning, stacklevel=2)
    runner = CampaignRunner(backend=backend, store=cache_dir,
                            use_cache=use_cache)
    return runner.characterize(fu, stream, conditions, library)


def error_free_clocks(trace: DelayTrace) -> Dict[OperatingCondition, float]:
    """Fastest error-free clock per condition (paper Sec. V-A).

    Defined as the maximum dynamic delay observed during offline
    characterization — speeding up beyond it guarantees "the output has
    timing errors".
    """
    return {condition: float(trace.delays[k].max())
            for k, condition in enumerate(trace.conditions)}
