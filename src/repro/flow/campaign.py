"""DTA campaigns: characterize FUs across workloads and corners.

A campaign runs the levelized DTA engine over an operand stream at many
operating conditions, yielding the delay matrices that feed training,
baselines, and every bench.  Results cache to ``.npz`` files keyed by a
content hash so reruns of the benches are cheap.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..sim.dta import DelayTrace
from ..sim.levelized import LevelizedSimulator
from ..timing.cells import CellLibrary, DEFAULT_LIBRARY
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream

#: Default on-disk cache location (override with REPRO_CACHE_DIR).
def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR",
                               Path.home() / ".cache" / "repro-tevot"))


def _campaign_key(fu: FunctionalUnit, stream: OperandStream,
                  conditions: Sequence[OperatingCondition]) -> str:
    """Content hash of (netlist structure, stream data, corner list)."""
    h = hashlib.sha256()
    h.update(fu.name.encode())
    h.update(str(fu.netlist.stats()).encode())
    h.update(np.ascontiguousarray(stream.a).tobytes())
    h.update(np.ascontiguousarray(stream.b).tobytes())
    for c in conditions:
        h.update(f"{c.voltage:.4f},{c.temperature:.2f};".encode())
    return h.hexdigest()[:24]


def characterize(fu: FunctionalUnit, stream: OperandStream,
                 conditions: Sequence[OperatingCondition],
                 library: CellLibrary = DEFAULT_LIBRARY,
                 cache_dir: Optional[Path] = None,
                 use_cache: bool = True) -> DelayTrace:
    """Dynamic-delay characterization of one FU under one workload.

    Returns a :class:`DelayTrace` with shape ``(n_conditions,
    n_cycles)``; transparently cached on disk.
    """
    conditions = list(conditions)
    cache_path = None
    if use_cache:
        cache_root = Path(cache_dir) if cache_dir else default_cache_dir()
        cache_root.mkdir(parents=True, exist_ok=True)
        key = _campaign_key(fu, stream, conditions)
        cache_path = cache_root / f"dta_{fu.name}_{stream.name}_{key}.npz"
        if cache_path.exists():
            data = np.load(cache_path)
            return DelayTrace(data["delays"], conditions,
                              inputs=stream.bit_matrix(fu))

    sim = LevelizedSimulator(fu.netlist)
    inputs = stream.bit_matrix(fu)
    delay_matrix = library.delay_matrix(fu.netlist, conditions)
    result = sim.run(inputs, delay_matrix)
    trace = DelayTrace(result.delays, conditions, inputs=inputs)
    if cache_path is not None:
        np.savez_compressed(cache_path, delays=trace.delays)
    return trace


def error_free_clocks(trace: DelayTrace) -> Dict[OperatingCondition, float]:
    """Fastest error-free clock per condition (paper Sec. V-A).

    Defined as the maximum dynamic delay observed during offline
    characterization — speeding up beyond it guarantees "the output has
    timing errors".
    """
    return {condition: float(trace.delays[k].max())
            for k, condition in enumerate(trace.conditions)}
