"""Crash-safe, concurrency-safe file persistence primitives.

Every store in the repo (trace cache, model registry, request log,
campaign journals) funnels its durability through this module:

* :func:`atomic_replace` — write to a temp file, fsync, ``os.replace``
  onto the final name, fsync the directory.  A crash at any instant
  leaves either the old bytes or the new bytes, never a torn file.
* :func:`write_envelope` / :func:`read_envelope` — checksummed JSON
  manifest envelopes with a generation counter.  A bit-flipped or
  truncated manifest is detected on read (:class:`ManifestCorrupt`)
  instead of being half-trusted.
* :class:`StoreLock` — advisory ``fcntl`` inter-process lock with a
  timeout; :class:`StoreLockTimeout` names the holder recorded in the
  lock file.  Reentrant within a process.
* :func:`quarantine` — move a corrupt file aside to
  ``<name>.corrupt-<timestamp>`` so it can be inspected, never silently
  deleted, and never re-read as truth.

Fault points for the chaos suite are threaded through ``site=`` —
see :mod:`repro.testing.faults`.
"""
from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

try:  # advisory locking is POSIX-only; degrade to no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from ..testing import faults

ENVELOPE_VERSION = 1


class ManifestCorrupt(ValueError):
    """An envelope failed to parse or its checksum does not match."""


class StoreLockTimeout(TimeoutError):
    """Could not acquire a :class:`StoreLock` in time; the message
    names the recorded holder (pid/host)."""


def fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename itself) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_replace(path: Union[str, Path], data: Union[bytes, str], *,
                   site: Optional[str] = None) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename).

    ``site`` arms a fault point: ``raise``/``exit`` fire after the temp
    file is written but before the rename (the old file survives
    intact); ``torn-write`` writes half the bytes straight to the final
    path and hard-exits, simulating the legacy in-place writer dying
    mid-write.
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    action = faults.trigger(site)
    if action == "torn-write":
        with open(path, "wb") as fh:
            fh.write(data[: max(1, len(data) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
        os._exit(faults.TORN_EXIT_CODE)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        if action == "raise":
            raise faults.FaultInjected(f"fault injected at {site}")
        if action == "exit":
            os._exit(faults.EXIT_CODE)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)


def payload_checksum(payload: Dict) -> str:
    """sha256 over the canonical (compact, key-sorted) JSON encoding."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def write_envelope(path: Union[str, Path], payload: Dict, *,
                   site: Optional[str] = None) -> int:
    """Wrap ``payload`` in a checksummed envelope and atomically replace
    ``path``.  Returns the new generation number (monotonic per file;
    resets if the previous envelope was unreadable)."""
    path = Path(path)
    try:
        _, generation = read_envelope(path)
    except (FileNotFoundError, ManifestCorrupt):
        generation = 0
    generation += 1
    envelope = {
        "envelope_version": ENVELOPE_VERSION,
        "generation": generation,
        "sha256": payload_checksum(payload),
        "payload": payload,
    }
    atomic_replace(path, json.dumps(envelope, indent=1, sort_keys=True),
                   site=site)
    return generation


def read_envelope(path: Union[str, Path]) -> Tuple[Dict, int]:
    """Read an envelope, verifying its checksum.

    Returns ``(payload, generation)``.  A pre-envelope plain-dict
    manifest is returned as generation 0 (upgraded on next write).
    Raises :class:`ManifestCorrupt` on any parse/shape/checksum failure
    and FileNotFoundError when the file does not exist.
    """
    path = Path(path)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestCorrupt(f"{path}: unparsable JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ManifestCorrupt(f"{path}: manifest is not an object")
    if "envelope_version" not in obj:
        return obj, 0  # legacy plain manifest
    if obj["envelope_version"] != ENVELOPE_VERSION:
        raise ManifestCorrupt(
            f"{path}: unknown envelope_version {obj['envelope_version']!r}")
    payload = obj.get("payload")
    if not isinstance(payload, dict):
        raise ManifestCorrupt(f"{path}: envelope payload is not an object")
    if obj.get("sha256") != payload_checksum(payload):
        raise ManifestCorrupt(f"{path}: payload checksum mismatch")
    try:
        generation = int(obj.get("generation", 0))
    except (TypeError, ValueError):
        raise ManifestCorrupt(
            f"{path}: bad generation {obj.get('generation')!r}") from None
    return payload, generation


def quarantine(path: Union[str, Path]) -> Optional[Path]:
    """Move a corrupt file aside to ``<name>.corrupt-<ts>``.

    Returns the quarantine path, or None if the file vanished first
    (a concurrent quarantiner won the race)."""
    path = Path(path)
    stamp = time.strftime("%Y%m%dT%H%M%S")
    for attempt in range(1000):
        suffix = f".corrupt-{stamp}" if attempt == 0 else \
            f".corrupt-{stamp}-{os.getpid()}.{attempt}"
        target = path.with_name(path.name + suffix)
        if target.exists():
            continue
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None
        fsync_dir(path.parent)
        return target
    raise OSError(f"could not find a free quarantine name for {path}")


# Reentrancy registry: flock(2) locks conflict between two file
# descriptors of the *same* process, so nested StoreLock context
# managers on one path must share a single fd.  Keyed by absolute path;
# the recorded pid guards against fork-inherited state.
_HELD: Dict[str, List] = {}  # abspath -> [pid, depth, file object]
_HELD_GUARD = threading.Lock()


class StoreLock:
    """Advisory inter-process lock on a store directory.

    Usage::

        with StoreLock(root / ".lock", timeout=10.0):
            ... read-modify-write the manifest ...

    The lock file records the holder (pid/host/acquire time); a timeout
    raises :class:`StoreLockTimeout` naming that holder.  Reentrant
    within a process.  No-op on platforms without ``fcntl``.
    """

    def __init__(self, path: Union[str, Path], *, timeout: float = 10.0,
                 poll_s: float = 0.02):
        self.path = Path(path)
        self.timeout = timeout
        self.poll_s = poll_s
        self._acquired = False

    def _key(self) -> str:
        return os.path.abspath(self.path)

    def acquire(self) -> "StoreLock":
        if self._acquired:
            raise RuntimeError("StoreLock instance is not re-acquirable; "
                               "nest separate instances instead")
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            self._acquired = True
            return self
        key = self._key()
        with _HELD_GUARD:
            held = _HELD.get(key)
            if held is not None and held[0] == os.getpid():
                held[1] += 1
                self._acquired = True
                return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+", encoding="utf-8")
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    holder = self._read_holder(fh)
                    fh.close()
                    msg = (f"timed out after {self.timeout:.1f}s waiting "
                           f"for store lock {self.path}")
                    if holder:
                        msg += f" (held by {holder})"
                    raise StoreLockTimeout(msg)
                time.sleep(self.poll_s)
        fh.seek(0)
        fh.truncate()
        fh.write(f"pid={os.getpid()} host={os.uname().nodename} "
                 f"since={time.strftime('%Y-%m-%dT%H:%M:%S')}\n")
        fh.flush()
        with _HELD_GUARD:
            _HELD[key] = [os.getpid(), 1, fh]
        self._acquired = True
        return self

    @staticmethod
    def _read_holder(fh) -> str:
        try:
            fh.seek(0)
            return fh.read().strip()
        except OSError:  # pragma: no cover
            return ""

    def release(self) -> None:
        if not self._acquired:
            return
        self._acquired = False
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            return
        key = self._key()
        with _HELD_GUARD:
            held = _HELD.get(key)
            if held is None or held[0] != os.getpid():
                return
            held[1] -= 1
            if held[1] > 0:
                return
            fh = held[2]
            del _HELD[key]
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        finally:
            fh.close()

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
