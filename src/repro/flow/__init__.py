"""Flow orchestration: simulated ASIC flow + DTA campaigns."""

from .asicflow import ImplementedDesign, implement
from .campaign import characterize, default_cache_dir, error_free_clocks

__all__ = [
    "ImplementedDesign",
    "characterize",
    "default_cache_dir",
    "error_free_clocks",
    "implement",
]
