"""Flow orchestration: simulated ASIC flow + DTA campaigns."""

from .asicflow import ImplementedDesign, implement
from .campaign import (
    DEFAULT_BACKEND,
    MIN_SHARD_CYCLES,
    TARGET_SHARD_SECONDS,
    CampaignJob,
    CampaignRunner,
    CampaignStats,
    ShardExec,
    characterize,
    error_free_clocks,
    plan_campaign,
    plan_cycle_shards,
    plan_shards,
)
from .durable import (
    ManifestCorrupt,
    StoreLock,
    StoreLockTimeout,
    atomic_replace,
    quarantine,
    read_envelope,
    write_envelope,
)
from .manifest import read_manifest, stable_fingerprint, write_manifest
from .pool import JobProgram, PoolRunResult, TaskResult, WorkerPool
from .tracestore import (
    GCReport,
    TraceStore,
    default_cache_dir,
    library_fingerprint,
    trace_key,
)

__all__ = [
    "CampaignJob",
    "CampaignRunner",
    "CampaignStats",
    "DEFAULT_BACKEND",
    "GCReport",
    "ImplementedDesign",
    "JobProgram",
    "MIN_SHARD_CYCLES",
    "ManifestCorrupt",
    "StoreLock",
    "StoreLockTimeout",
    "atomic_replace",
    "quarantine",
    "read_envelope",
    "write_envelope",
    "PoolRunResult",
    "ShardExec",
    "TaskResult",
    "TraceStore",
    "WorkerPool",
    "characterize",
    "default_cache_dir",
    "error_free_clocks",
    "implement",
    "library_fingerprint",
    "plan_campaign",
    "plan_cycle_shards",
    "plan_shards",
    "TARGET_SHARD_SECONDS",
    "read_manifest",
    "stable_fingerprint",
    "trace_key",
    "write_manifest",
]
