"""Deadline bookkeeping + hung-worker discipline, shared across tiers.

Two failure modes look identical from a parent process waiting on
``conn.recv()``: a worker that *died* (the pipe breaks — easy, the
existing respawn/reissue paths catch it) and a worker that *hung*
(deadlocked, stuck in a runaway loop, wedged on I/O).  A hung worker
breaks nothing visible; the parent just waits forever, and everything
queued behind that batch waits with it.

This module is the small shared vocabulary both supervision loops —
the serving cluster front end (:mod:`repro.serve.cluster`) and the
campaign worker pool (:mod:`repro.flow.pool`) — use to bound that
wait:

* :class:`Deadline` — an absolute point on the monotonic clock,
  usually derived from a request's ``deadline_ms`` budget.  Cheap to
  pass around, cheap to query, and ``None``-friendly (no deadline is a
  valid state everywhere).
* :func:`kill_worker` — SIGKILL + join for a worker that neither
  answers nor dies.  SIGTERM is deliberately not tried first: a hung
  process may have the very lock its signal handler would need, and
  the caller has already decided the worker's output is worthless.

Policy (how long to wait, whether to reissue, what to answer the
client) stays with the callers; this module only keeps the two loops'
*mechanics* identical so a fix in one cannot drift from the other.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

__all__ = [
    "Deadline",
    "kill_worker",
]


class Deadline:
    """An absolute expiry instant on the monotonic clock.

    Constructed from a relative budget (:meth:`after_ms` /
    :meth:`after_s`) at the moment a request is accepted, then carried
    down the execution path — every layer asks :meth:`remaining_s`
    against the same fixed instant, so time spent queued counts
    against the same budget as time spent executing.
    """

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = at

    @classmethod
    def after_s(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def after_ms(cls, ms: float) -> "Deadline":
        return cls.after_s(float(ms) / 1e3)

    def remaining_s(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    @staticmethod
    def earliest(deadlines: Iterable[Optional["Deadline"]]
                 ) -> Optional["Deadline"]:
        """Tightest of a batch's deadlines (None entries = unbounded).

        A batch executes as one unit, so the whole batch inherits its
        most impatient member; members without a deadline never
        loosen it and an all-``None`` batch stays unbounded.
        """
        best: Optional[Deadline] = None
        for d in deadlines:
            if d is not None and (best is None or d.at < best.at):
                best = d
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(in {self.remaining_s():+.3f}s)"


def kill_worker(process, join_timeout: float = 2.0) -> None:
    """Forcibly stop a hung worker process (SIGKILL, then join).

    Idempotent and tolerant of the worker dying on its own between
    the liveness check and the kill.
    """
    try:
        if process.is_alive():
            process.kill()
    except (OSError, ValueError):  # pragma: no cover - already reaped
        pass
    process.join(timeout=join_timeout)
