"""Versioned on-disk store for characterization traces.

Replaces the old flat-file ``.npz`` cache: a :class:`TraceStore` is a
directory holding one ``manifest.json`` plus one compressed ``.npz``
blob per trace.  Entries are keyed by a content hash covering
everything that determines a DTA trace:

* the netlist identity (FU name + structural stats),
* the exact operand stream bytes,
* the operating-corner list,
* the **cell library** (per-cell timings + V/T scaling parameters) —
  the old cache omitted this, so characterizing with a non-default
  library silently returned stale delays, and
* the backend's delay model (``"dta"`` vs ``"glitch"``): the DTA
  engines agree bit-for-bit and share entries; the glitch-accurate
  event engine must not.

The manifest records per-entry metadata (shapes, library fingerprint,
producing backend, creation time) and a store schema version so future
layout changes can migrate or ignore old stores safely.

Durability (see :mod:`repro.flow.durable`): the manifest is a
checksummed envelope replaced atomically; ``.npz`` blobs are written
tmp + fsync + rename with their metadata embedded, so a corrupt
manifest is quarantined and **rebuilt by rescanning the blobs**;
read-modify-write cycles (put, throughput history, gc, campaign
journals) serialize under an advisory inter-process lock.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit, available_units
from ..sim.dta import DelayTrace
from ..testing import faults
from ..timing.cells import CellLibrary
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .durable import (
    ManifestCorrupt,
    StoreLock,
    StoreLockTimeout,
    fsync_dir,
    quarantine,
    read_envelope,
    write_envelope,
)
from .manifest import read_manifest, write_manifest

#: Bump when the on-disk layout or key derivation changes.
STORE_VERSION = 1

#: Shard range a journal records: (corner0, corner1, cycle0, cycle1).
ShardRange = Tuple[int, int, int, int]

SITE_MANIFEST = faults.register_site("tracestore.manifest.replace",
                                     persistence=True)
SITE_BLOB = faults.register_site("tracestore.blob.write", persistence=True)
SITE_JOURNAL = faults.register_site("campaign.journal.replace",
                                    persistence=True)


def default_cache_dir() -> Path:
    """Default on-disk store location (override with REPRO_CACHE_DIR)."""
    return Path(os.environ.get("REPRO_CACHE_DIR",
                               Path.home() / ".cache" / "repro-tevot"))


def library_fingerprint(library: CellLibrary) -> str:
    """Stable content hash of a cell library's timing model.

    Covers every per-cell timing figure and the V/T scaling parameters
    — two libraries with the same fingerprint produce identical delay
    matrices for any netlist.
    """
    h = hashlib.sha256()
    for gtype in sorted(library.timings, key=lambda g: g.value):
        t = library.timings[gtype]
        h.update(f"{gtype.value}:{t.intrinsic!r},{t.load!r},"
                 f"{t.vth_offset!r};".encode())
    h.update(repr(library.scaling).encode())
    return h.hexdigest()[:16]


def trace_key(fu: FunctionalUnit, stream: OperandStream,
              conditions: Sequence[OperatingCondition],
              library: CellLibrary,
              delay_model: str = "dta") -> str:
    """Content hash identifying one characterization trace."""
    h = hashlib.sha256()
    h.update(f"v{STORE_VERSION};".encode())
    h.update(fu.name.encode())
    h.update(str(fu.netlist.stats()).encode())
    h.update(np.ascontiguousarray(stream.a).tobytes())
    h.update(np.ascontiguousarray(stream.b).tobytes())
    for c in conditions:
        h.update(f"{c.voltage:.4f},{c.temperature:.2f};".encode())
    h.update(library_fingerprint(library).encode())
    h.update(delay_model.encode())
    return h.hexdigest()[:24]


@dataclass
class GCReport:
    """What a :meth:`TraceStore.gc` pass did (or would do)."""

    removed_blobs: List[str] = field(default_factory=list)
    dropped_entries: List[str] = field(default_factory=list)
    freed_bytes: int = 0
    kept_bytes: int = 0

    def summary(self) -> str:
        return (f"removed {len(self.removed_blobs)} blob(s) "
                f"({self.freed_bytes / 1e6:.2f} MB), dropped "
                f"{len(self.dropped_entries)} entr(y/ies), "
                f"{self.kept_bytes / 1e6:.2f} MB kept")


class TraceStore:
    """Manifest-backed store of delay traces under one root directory."""

    def __init__(self, root: Union[str, Path, None] = None, *,
                 lock_timeout: float = 10.0) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.lock_timeout = lock_timeout

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def lock(self) -> StoreLock:
        """Advisory inter-process lock serializing store writers."""
        return StoreLock(self.root / ".store.lock",
                         timeout=self.lock_timeout)

    # -- manifest -------------------------------------------------------------

    def _read_manifest(self) -> Dict:
        return read_manifest(self.manifest_path, version_key="store_version",
                             version=STORE_VERSION, entries_key="entries",
                             on_corrupt=self._recover_manifest)

    def _write_manifest(self, manifest: Dict) -> None:
        write_manifest(self.manifest_path, manifest, site=SITE_MANIFEST)

    def _recover_manifest(self, exc: ManifestCorrupt) -> Dict:
        """Quarantine a corrupt manifest and rebuild it from the blobs.

        Blob files are self-describing (embedded metadata since the
        durable layer landed; key-embedding filenames before that), so
        the entry table is fully recoverable.  The throughput history
        lives only in the manifest and degrades to empty — the adaptive
        planner falls back to static heuristics, it never crashes.
        """
        quarantined = quarantine(self.manifest_path)
        manifest: Dict = {"store_version": STORE_VERSION, "entries": {}}
        for blob in sorted(self.root.glob("dta_*.npz")):
            rec = self._blob_entry(blob)
            if rec is not None:
                key, entry = rec
                manifest["entries"][key] = entry
        warnings.warn(
            f"trace-store manifest was corrupt ({exc}); quarantined to "
            f"{quarantined.name if quarantined else '<gone>'} and rebuilt "
            f"{len(manifest['entries'])} entr(y/ies) from on-disk blobs "
            f"(throughput history reset)", RuntimeWarning, stacklevel=4)
        try:  # persist so the next reader skips the rescan; best-effort
            with StoreLock(self.root / ".store.lock", timeout=0.5):
                self._write_manifest(manifest)
        except (StoreLockTimeout, OSError):
            pass
        return manifest

    def _blob_entry(self, blob: Path) -> Optional[Tuple[str, Dict]]:
        """(key, manifest entry) recovered from one blob, else None."""
        try:
            with np.load(blob) as data:
                shape = data["delays"].shape
                meta = (json.loads(data["meta"].item())
                        if "meta" in data.files else {})
        except Exception:
            return None  # unreadable blob: not worth an entry
        if not isinstance(meta, dict):
            meta = {}
        stem = blob.name[len("dta_"):-len(".npz")]
        tokens = stem.split("_")
        key = meta.get("key") or tokens[-1]
        fu, stream = meta.get("fu"), meta.get("stream")
        if fu is None:
            # filename fallback for pre-durable blobs: match the longest
            # known unit name, the rest of the middle is the stream name
            middle = "_".join(tokens[:-1])
            for name in sorted(available_units(), key=len, reverse=True):
                if middle == name or middle.startswith(name + "_"):
                    fu = name
                    stream = middle[len(name) + 1:] or "unknown"
                    break
            else:
                fu = tokens[0]
                stream = "_".join(tokens[1:-1]) or "unknown"
        entry = {
            "file": blob.name,
            "fu": fu,
            "stream": stream,
            "n_conditions": int(shape[0]),
            "n_cycles": int(shape[1]),
            "library": meta.get("library", ""),
            "delay_model": meta.get("delay_model", "dta"),
            "backend": meta.get("backend", ""),
            "created": meta.get("created",
                                time.strftime("%Y-%m-%dT%H:%M:%S")),
            "rebuilt": True,
        }
        return key, entry

    def entries(self) -> Dict[str, Dict]:
        """Key -> metadata for everything in the store."""
        return dict(self._read_manifest()["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()["entries"]

    # -- throughput history ----------------------------------------------------
    #
    # A small side-table in the manifest feeding the campaign layer's
    # adaptive shard planner: per (FU, backend, corner-count), an
    # exponential moving average of corner-cycles simulated per
    # worker-second.  Readers are deliberately paranoid — a corrupted
    # or hand-edited section must degrade to "no history" (static
    # planning), never crash a campaign.

    @staticmethod
    def _throughput_key(fu_name: str, backend: str, n_corners: int) -> str:
        return f"{fu_name}|{backend}|{int(n_corners)}"

    def _throughput_section(self, manifest: Dict) -> Dict:
        section = manifest.get("throughput")
        return section if isinstance(section, dict) else {}

    @staticmethod
    def _entry_cps(entry) -> Optional[float]:
        """Validated corner-cycles/s of one history entry, else None."""
        if not isinstance(entry, dict):
            return None
        try:
            value = float(entry.get("corner_cycles_per_s"))
        except (TypeError, ValueError):
            return None
        if not np.isfinite(value) or value <= 0:
            return None
        return value

    def record_throughput(self, fu_name: str, backend: str,
                          n_corners: int,
                          corner_cycles_per_s: float,
                          alpha: float = 0.4) -> None:
        """Fold one observation into the per-(FU, backend, corners) EWMA."""
        try:
            observed = float(corner_cycles_per_s)
        except (TypeError, ValueError):
            return
        if not np.isfinite(observed) or observed <= 0:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with self.lock():
            manifest = self._read_manifest()  # single read: prev + samples
            section = self._throughput_section(manifest)
            key = self._throughput_key(fu_name, backend, n_corners)
            prev = self._entry_cps(section.get(key))
            entry = (section.get(key)
                     if isinstance(section.get(key), dict) else {})
            samples = entry.get("samples")
            samples = (samples
                       if isinstance(samples, int) and samples >= 0 else 0)
            value = (observed if prev is None
                     else alpha * observed + (1 - alpha) * prev)
            section[key] = {
                "corner_cycles_per_s": float(value),
                "samples": samples + 1,
                "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            }
            manifest["throughput"] = section
            self._write_manifest(manifest)

    def get_throughput(self, fu_name: str, backend: str,
                       n_corners: int) -> Optional[float]:
        """EWMA corner-cycles/s for this (FU, backend, corner-count),
        or None when the history is absent or unusable."""
        section = self._throughput_section(self._read_manifest())
        return self._entry_cps(
            section.get(self._throughput_key(fu_name, backend, n_corners)))

    def get_throughput_many(
            self, keys: Sequence[Tuple[str, str, int]]
            ) -> List[Optional[float]]:
        """Bulk :meth:`get_throughput` — one manifest read for a whole
        campaign batch.  ``keys`` holds ``(fu_name, backend,
        n_corners)`` tuples; the result aligns with it."""
        section = self._throughput_section(self._read_manifest())
        return [self._entry_cps(section.get(
                    self._throughput_key(fu_name, backend, n_corners)))
                for fu_name, backend, n_corners in keys]

    def throughput_history(self) -> Dict[str, Dict]:
        """The raw persisted throughput section (copy)."""
        return dict(self._throughput_section(self._read_manifest()))

    def clear_throughput(self) -> int:
        """Drop the whole throughput history; returns entries removed.

        Use after hardware or backend changes that make old cycles/s
        observations misleading for the adaptive planner.
        """
        with self.lock():
            manifest = self._read_manifest()
            section = self._throughput_section(manifest)
            if not section:
                return 0
            n = len(section)
            manifest["throughput"] = {}
            self._write_manifest(manifest)
        return n

    # -- traces ---------------------------------------------------------------

    def get(self, key: str, conditions: Sequence[OperatingCondition],
            inputs: Optional[np.ndarray] = None) -> Optional[DelayTrace]:
        """Load the trace stored under ``key``, or None on a miss."""
        entry = self._read_manifest()["entries"].get(key)
        if entry is not None:
            blob = self.root / entry["file"]
        else:
            # blob names embed the key, so a manifest entry lost to a
            # concurrent writer still resolves instead of re-simulating
            blob = next(iter(self.root.glob(f"dta_*_{key}.npz")), None)
            if blob is None:
                return None
            self._readopt_blob(blob)
        try:
            data = np.load(blob)
            delays = data["delays"]
        except FileNotFoundError:
            return None
        except Exception as exc:
            # truncated/garbled blob (e.g. a pre-durable writer died
            # mid-write): quarantine it and treat as a cache miss
            quarantined = quarantine(blob)
            warnings.warn(
                f"unreadable trace blob {blob.name} ({exc}); quarantined "
                f"to {quarantined.name if quarantined else '<gone>'} and "
                f"treating as a cache miss", RuntimeWarning, stacklevel=2)
            return None
        return DelayTrace(delays, list(conditions), inputs=inputs)

    def _readopt_blob(self, blob: Path) -> None:
        """Best-effort: re-register an orphaned blob in the manifest.

        A writer that died between the blob rename and the manifest
        replace leaves a resolvable blob with no entry — and ``gc``
        would collect it as an orphan.  Repair failures (lock
        contention, read-only store) never block the read.
        """
        rec = self._blob_entry(blob)
        if rec is None:
            return
        key, entry = rec
        try:
            with StoreLock(self.root / ".store.lock", timeout=0.5):
                manifest = self._read_manifest()
                if key not in manifest["entries"]:
                    manifest["entries"][key] = entry
                    self._write_manifest(manifest)
        except (StoreLockTimeout, OSError):
            pass

    def blob_path(self, key: str) -> Optional[Path]:
        """Resolve ``key`` to its on-disk blob (manifest entry first,
        then the key-embedding filename fallback), or None on a miss.
        Used by the store service to stream blob bytes as-is."""
        entry = self._read_manifest()["entries"].get(key)
        if entry is not None:
            path = self.root / entry["file"]
            if path.is_file():
                return path
        return next(iter(self.root.glob(f"dta_*_{key}.npz")), None)

    def put(self, key: str, trace: DelayTrace, *, fu_name: str,
            stream_name: str, library: Union[CellLibrary, str],
            delay_model: str = "dta", backend: str = "") -> Path:
        """Persist a trace and record it in the manifest.

        The blob is written atomically with its metadata embedded (for
        manifest rebuilds); blob + manifest update happen under the
        store lock so concurrent writers cannot drop each other's
        entries.  ``library`` may be the :class:`CellLibrary` itself or
        an already-computed :func:`library_fingerprint` string (a
        remote client sends the fingerprint; the wire never carries
        the library object).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        fname = f"dta_{fu_name}_{stream_name}_{key}.npz"
        entry = {
            "file": fname,
            "fu": fu_name,
            "stream": stream_name,
            "n_conditions": int(trace.delays.shape[0]),
            "n_cycles": int(trace.delays.shape[1]),
            "library": (library if isinstance(library, str)
                        else library_fingerprint(library)),
            "delay_model": delay_model,
            "backend": backend,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        meta = json.dumps({"key": key, **entry}, sort_keys=True)
        with self.lock():
            self._write_blob(self.root / fname, trace.delays, meta,
                             site=SITE_BLOB)
            manifest = self._read_manifest()
            manifest["entries"][key] = entry
            self._write_manifest(manifest)
        return self.root / fname

    @staticmethod
    def _write_blob(path: Path, delays: np.ndarray, meta_json: str, *,
                    site: Optional[str] = None) -> None:
        """Atomically write one npz blob (tmp + fsync + rename).

        ``site`` arms a fault point mirroring
        :func:`~repro.flow.durable.atomic_replace`: raise/exit fire
        before the rename; torn-write leaves half a blob at the final
        path and hard-exits.
        """
        action = faults.trigger(site)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, delays=delays,
                                    meta=np.array(meta_json))
                fh.flush()
                os.fsync(fh.fileno())
            if action == "raise":
                raise faults.FaultInjected(f"fault injected at {site}")
            if action == "exit":
                os._exit(faults.EXIT_CODE)
            if action == "torn-write":
                data = tmp.read_bytes()
                with open(path, "wb") as fh:
                    fh.write(data[: max(1, len(data) // 2)])
                    fh.flush()
                    os.fsync(fh.fileno())
                os._exit(faults.TORN_EXIT_CODE)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        fsync_dir(path.parent)

    # -- eviction / garbage collection ----------------------------------------

    def size_bytes(self) -> int:
        """Total size of the trace blobs currently on disk."""
        return sum(p.stat().st_size for p in self.root.glob("dta_*.npz"))

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> GCReport:
        """Collect garbage and optionally enforce a size budget.

        Three passes, mirroring the long-lived-cache needs from the
        ROADMAP:

        1. blobs on disk that no manifest entry references are removed
           (orphans from crashed writers or manifest races);
        2. manifest entries whose blob has vanished are dropped;
        3. with ``max_bytes``, the oldest entries (by creation stamp)
           are evicted until the remaining blobs fit the budget.

        ``dry_run`` reports what would happen without touching disk.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        report = GCReport()
        if not self.root.is_dir():
            return report
        with self.lock():
            return self._gc_locked(max_bytes, dry_run, report)

    def _gc_locked(self, max_bytes: Optional[int], dry_run: bool,
                   report: GCReport) -> GCReport:
        # stray temp files from crashed writers (the lock is held, so
        # no live writer owns any of them)
        if not dry_run:
            for tmp in self.root.glob(".*.tmp*"):
                tmp.unlink(missing_ok=True)
        manifest = self._read_manifest()
        entries = manifest["entries"]
        referenced = {entry["file"] for entry in entries.values()}

        for blob in sorted(self.root.glob("dta_*.npz")):
            if blob.name not in referenced:
                report.removed_blobs.append(blob.name)
                report.freed_bytes += blob.stat().st_size
                if not dry_run:
                    blob.unlink()

        live: Dict[str, int] = {}  # key -> blob size
        for key, entry in list(entries.items()):
            blob = self.root / entry["file"]
            if not blob.is_file():
                report.dropped_entries.append(key)
                if not dry_run:
                    del entries[key]
                continue
            live[key] = blob.stat().st_size

        if max_bytes is not None:
            total = sum(live.values())
            oldest_first = sorted(
                live, key=lambda k: (entries[k].get("created", ""), k))
            for key in oldest_first:
                if total <= max_bytes:
                    break
                blob = self.root / entries[key]["file"]
                report.removed_blobs.append(blob.name)
                report.dropped_entries.append(key)
                report.freed_bytes += live[key]
                total -= live.pop(key)
                if not dry_run:
                    blob.unlink()
                    del entries[key]

        report.kept_bytes = sum(live.values())
        if not dry_run and (report.removed_blobs or report.dropped_entries):
            self._write_manifest(manifest)
        return report

    # -- campaign shard journal ------------------------------------------------
    #
    # CampaignRunner checkpoints completed shards here so a killed
    # campaign's rerun resumes instead of re-simulating.  Per job key:
    # one envelope journal (the shard plan + which shards are done) and
    # one small ``part_*.npz`` per finished shard.  Everything is
    # removed by :meth:`clear_journal` once the stitched trace lands in
    # the store proper.

    def _journal_path(self, key: str) -> Path:
        return self.root / f"journal_{key}.json"

    def _part_path(self, key: str, shard: ShardRange) -> Path:
        c0, c1, t0, t1 = shard
        return self.root / f"part_{key}_{c0}-{c1}_{t0}-{t1}.npz"

    @staticmethod
    def _shard_tag(shard: ShardRange) -> str:
        return ":".join(str(int(x)) for x in shard)

    def record_journal_shard(self, key: str, *, plan: Sequence[ShardRange],
                             shard: ShardRange, delays: np.ndarray,
                             backend: str, n_corners: int,
                             n_cycles: int) -> None:
        """Persist one finished shard and mark it done in the journal."""
        self.root.mkdir(parents=True, exist_ok=True)
        part = self._part_path(key, shard)
        self._write_blob(part, np.ascontiguousarray(delays), "{}")
        with self.lock():
            journal = self._load_journal_payload(key)
            if journal is None:
                journal = {
                    "key": key,
                    "backend": backend,
                    "n_corners": int(n_corners),
                    "n_cycles": int(n_cycles),
                    "plan": [list(int(x) for x in s) for s in plan],
                    "done": {},
                }
            journal["done"][self._shard_tag(shard)] = part.name
            write_envelope(self._journal_path(key), journal,
                           site=SITE_JOURNAL)

    def _load_journal_payload(self, key: str) -> Optional[Dict]:
        path = self._journal_path(key)
        try:
            payload, _ = read_envelope(path)
        except FileNotFoundError:
            return None
        except ManifestCorrupt as exc:
            quarantined = quarantine(path)
            warnings.warn(
                f"corrupt campaign journal {path.name} quarantined to "
                f"{quarantined.name if quarantined else '<gone>'}: {exc}",
                RuntimeWarning, stacklevel=3)
            return None
        return payload if isinstance(payload, dict) else None

    def load_journal(self, key: str, *, backend: str, n_corners: int,
                     n_cycles: int
                     ) -> Optional[Tuple[List[ShardRange],
                                         List[Tuple[ShardRange,
                                                    np.ndarray]]]]:
        """Resumable state for one job key, or None.

        Returns ``(plan, done)`` where ``plan`` is the journaled shard
        plan (the rerun must reuse it — a freshly computed plan need
        not tile identically) and ``done`` holds ``(shard, delays)``
        for every finished shard whose part file is intact.  Journals
        recorded against a different backend or grid are ignored.
        """
        payload = self._load_journal_payload(key)
        if payload is None:
            return None
        if (payload.get("backend") != backend
                or payload.get("n_corners") != int(n_corners)
                or payload.get("n_cycles") != int(n_cycles)):
            return None
        raw_plan = payload.get("plan")
        if not isinstance(raw_plan, list) or not raw_plan:
            return None
        plan: List[ShardRange] = []
        area = 0
        for s in raw_plan:
            if not (isinstance(s, list) and len(s) == 4):
                return None
            c0, c1, t0, t1 = (int(x) for x in s)
            if not (0 <= c0 < c1 <= n_corners and 0 <= t0 < t1 <= n_cycles):
                return None
            plan.append((c0, c1, t0, t1))
            area += (c1 - c0) * (t1 - t0)
        if area != int(n_corners) * int(n_cycles):
            return None  # plan does not tile the matrix; start over
        done: List[Tuple[ShardRange, np.ndarray]] = []
        plan_set = set(plan)
        for tag, fname in (payload.get("done") or {}).items():
            try:
                shard = tuple(int(x) for x in str(tag).split(":"))
            except ValueError:
                continue
            if len(shard) != 4 or shard not in plan_set:
                continue
            try:
                with np.load(self.root / str(fname)) as data:
                    part = np.array(data["delays"])
            except Exception:
                continue  # missing/torn part: just re-simulate it
            c0, c1, t0, t1 = shard
            if part.shape != (c1 - c0, t1 - t0):
                continue
            done.append((shard, part))
        return plan, done

    def clear_journal(self, key: str) -> None:
        """Drop the journal and part files for one job key (after the
        stitched trace has landed in the store proper)."""
        for path in ([self._journal_path(key)]
                     + sorted(self.root.glob(f"part_{key}_*.npz"))):
            try:
                path.unlink()
            except OSError:
                pass


def is_remote_url(root) -> bool:
    """True when ``root`` names a store service, not a directory."""
    return isinstance(root, str) and root.startswith(("http://", "https://"))


def open_trace_store(root: Union[str, Path, None] = None, *,
                     lock_timeout: float = 10.0, **remote_kwargs):
    """Open a trace store by location: local directory or service URL.

    An ``http(s)://`` string returns a
    :class:`~repro.remote.client.RemoteTraceStore` (same duck-typed
    surface, lazily imported so local flows never load the remote
    package); anything else — including None, meaning the default
    cache directory — builds a local :class:`TraceStore`.
    """
    if is_remote_url(root):
        from ..remote.client import RemoteTraceStore
        return RemoteTraceStore(root, **remote_kwargs)
    return TraceStore(root, lock_timeout=lock_timeout)
