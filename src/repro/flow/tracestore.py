"""Versioned on-disk store for characterization traces.

Replaces the old flat-file ``.npz`` cache: a :class:`TraceStore` is a
directory holding one ``manifest.json`` plus one compressed ``.npz``
blob per trace.  Entries are keyed by a content hash covering
everything that determines a DTA trace:

* the netlist identity (FU name + structural stats),
* the exact operand stream bytes,
* the operating-corner list,
* the **cell library** (per-cell timings + V/T scaling parameters) —
  the old cache omitted this, so characterizing with a non-default
  library silently returned stale delays, and
* the backend's delay model (``"dta"`` vs ``"glitch"``): the DTA
  engines agree bit-for-bit and share entries; the glitch-accurate
  event engine must not.

The manifest records per-entry metadata (shapes, library fingerprint,
producing backend, creation time) and a store schema version so future
layout changes can migrate or ignore old stores safely.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..sim.dta import DelayTrace
from ..timing.cells import CellLibrary
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream
from .manifest import read_manifest, write_manifest

#: Bump when the on-disk layout or key derivation changes.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """Default on-disk store location (override with REPRO_CACHE_DIR)."""
    return Path(os.environ.get("REPRO_CACHE_DIR",
                               Path.home() / ".cache" / "repro-tevot"))


def library_fingerprint(library: CellLibrary) -> str:
    """Stable content hash of a cell library's timing model.

    Covers every per-cell timing figure and the V/T scaling parameters
    — two libraries with the same fingerprint produce identical delay
    matrices for any netlist.
    """
    h = hashlib.sha256()
    for gtype in sorted(library.timings, key=lambda g: g.value):
        t = library.timings[gtype]
        h.update(f"{gtype.value}:{t.intrinsic!r},{t.load!r},"
                 f"{t.vth_offset!r};".encode())
    h.update(repr(library.scaling).encode())
    return h.hexdigest()[:16]


def trace_key(fu: FunctionalUnit, stream: OperandStream,
              conditions: Sequence[OperatingCondition],
              library: CellLibrary,
              delay_model: str = "dta") -> str:
    """Content hash identifying one characterization trace."""
    h = hashlib.sha256()
    h.update(f"v{STORE_VERSION};".encode())
    h.update(fu.name.encode())
    h.update(str(fu.netlist.stats()).encode())
    h.update(np.ascontiguousarray(stream.a).tobytes())
    h.update(np.ascontiguousarray(stream.b).tobytes())
    for c in conditions:
        h.update(f"{c.voltage:.4f},{c.temperature:.2f};".encode())
    h.update(library_fingerprint(library).encode())
    h.update(delay_model.encode())
    return h.hexdigest()[:24]


@dataclass
class GCReport:
    """What a :meth:`TraceStore.gc` pass did (or would do)."""

    removed_blobs: List[str] = field(default_factory=list)
    dropped_entries: List[str] = field(default_factory=list)
    freed_bytes: int = 0
    kept_bytes: int = 0

    def summary(self) -> str:
        return (f"removed {len(self.removed_blobs)} blob(s) "
                f"({self.freed_bytes / 1e6:.2f} MB), dropped "
                f"{len(self.dropped_entries)} entr(y/ies), "
                f"{self.kept_bytes / 1e6:.2f} MB kept")


class TraceStore:
    """Manifest-backed store of delay traces under one root directory."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    # -- manifest -------------------------------------------------------------

    def _read_manifest(self) -> Dict:
        return read_manifest(self.manifest_path, version_key="store_version",
                             version=STORE_VERSION, entries_key="entries")

    def _write_manifest(self, manifest: Dict) -> None:
        write_manifest(self.manifest_path, manifest)

    def entries(self) -> Dict[str, Dict]:
        """Key -> metadata for everything in the store."""
        return dict(self._read_manifest()["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()["entries"]

    # -- throughput history ----------------------------------------------------
    #
    # A small side-table in the manifest feeding the campaign layer's
    # adaptive shard planner: per (FU, backend, corner-count), an
    # exponential moving average of corner-cycles simulated per
    # worker-second.  Readers are deliberately paranoid — a corrupted
    # or hand-edited section must degrade to "no history" (static
    # planning), never crash a campaign.

    @staticmethod
    def _throughput_key(fu_name: str, backend: str, n_corners: int) -> str:
        return f"{fu_name}|{backend}|{int(n_corners)}"

    def _throughput_section(self, manifest: Dict) -> Dict:
        section = manifest.get("throughput")
        return section if isinstance(section, dict) else {}

    @staticmethod
    def _entry_cps(entry) -> Optional[float]:
        """Validated corner-cycles/s of one history entry, else None."""
        if not isinstance(entry, dict):
            return None
        try:
            value = float(entry.get("corner_cycles_per_s"))
        except (TypeError, ValueError):
            return None
        if not np.isfinite(value) or value <= 0:
            return None
        return value

    def record_throughput(self, fu_name: str, backend: str,
                          n_corners: int,
                          corner_cycles_per_s: float,
                          alpha: float = 0.4) -> None:
        """Fold one observation into the per-(FU, backend, corners) EWMA."""
        try:
            observed = float(corner_cycles_per_s)
        except (TypeError, ValueError):
            return
        if not np.isfinite(observed) or observed <= 0:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = self._read_manifest()  # single read: prev + samples
        section = self._throughput_section(manifest)
        key = self._throughput_key(fu_name, backend, n_corners)
        prev = self._entry_cps(section.get(key))
        entry = section.get(key) if isinstance(section.get(key), dict) else {}
        samples = entry.get("samples")
        samples = samples if isinstance(samples, int) and samples >= 0 else 0
        value = (observed if prev is None
                 else alpha * observed + (1 - alpha) * prev)
        section[key] = {
            "corner_cycles_per_s": float(value),
            "samples": samples + 1,
            "updated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        manifest["throughput"] = section
        self._write_manifest(manifest)

    def get_throughput(self, fu_name: str, backend: str,
                       n_corners: int) -> Optional[float]:
        """EWMA corner-cycles/s for this (FU, backend, corner-count),
        or None when the history is absent or unusable."""
        section = self._throughput_section(self._read_manifest())
        return self._entry_cps(
            section.get(self._throughput_key(fu_name, backend, n_corners)))

    def get_throughput_many(
            self, keys: Sequence[Tuple[str, str, int]]
            ) -> List[Optional[float]]:
        """Bulk :meth:`get_throughput` — one manifest read for a whole
        campaign batch.  ``keys`` holds ``(fu_name, backend,
        n_corners)`` tuples; the result aligns with it."""
        section = self._throughput_section(self._read_manifest())
        return [self._entry_cps(section.get(
                    self._throughput_key(fu_name, backend, n_corners)))
                for fu_name, backend, n_corners in keys]

    def throughput_history(self) -> Dict[str, Dict]:
        """The raw persisted throughput section (copy)."""
        return dict(self._throughput_section(self._read_manifest()))

    def clear_throughput(self) -> int:
        """Drop the whole throughput history; returns entries removed.

        Use after hardware or backend changes that make old cycles/s
        observations misleading for the adaptive planner.
        """
        manifest = self._read_manifest()
        section = self._throughput_section(manifest)
        if not section:
            return 0
        n = len(section)
        manifest["throughput"] = {}
        self._write_manifest(manifest)
        return n

    # -- traces ---------------------------------------------------------------

    def get(self, key: str, conditions: Sequence[OperatingCondition],
            inputs: Optional[np.ndarray] = None) -> Optional[DelayTrace]:
        """Load the trace stored under ``key``, or None on a miss."""
        entry = self._read_manifest()["entries"].get(key)
        if entry is not None:
            blob = self.root / entry["file"]
        else:
            # blob names embed the key, so a manifest entry lost to a
            # concurrent writer still resolves instead of re-simulating
            blob = next(iter(self.root.glob(f"dta_*_{key}.npz")), None)
            if blob is None:
                return None
        try:
            data = np.load(blob)
        except (FileNotFoundError, OSError):
            return None
        return DelayTrace(data["delays"], list(conditions), inputs=inputs)

    def put(self, key: str, trace: DelayTrace, *, fu_name: str,
            stream_name: str, library: CellLibrary,
            delay_model: str = "dta", backend: str = "") -> Path:
        """Persist a trace and record it in the manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        fname = f"dta_{fu_name}_{stream_name}_{key}.npz"
        np.savez_compressed(self.root / fname, delays=trace.delays)
        manifest = self._read_manifest()
        manifest["entries"][key] = {
            "file": fname,
            "fu": fu_name,
            "stream": stream_name,
            "n_conditions": int(trace.delays.shape[0]),
            "n_cycles": int(trace.delays.shape[1]),
            "library": library_fingerprint(library),
            "delay_model": delay_model,
            "backend": backend,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        self._write_manifest(manifest)
        return self.root / fname

    # -- eviction / garbage collection ----------------------------------------

    def size_bytes(self) -> int:
        """Total size of the trace blobs currently on disk."""
        return sum(p.stat().st_size for p in self.root.glob("dta_*.npz"))

    def gc(self, max_bytes: Optional[int] = None,
           dry_run: bool = False) -> GCReport:
        """Collect garbage and optionally enforce a size budget.

        Three passes, mirroring the long-lived-cache needs from the
        ROADMAP:

        1. blobs on disk that no manifest entry references are removed
           (orphans from crashed writers or manifest races);
        2. manifest entries whose blob has vanished are dropped;
        3. with ``max_bytes``, the oldest entries (by creation stamp)
           are evicted until the remaining blobs fit the budget.

        ``dry_run`` reports what would happen without touching disk.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        report = GCReport()
        if not self.root.is_dir():
            return report
        manifest = self._read_manifest()
        entries = manifest["entries"]
        referenced = {entry["file"] for entry in entries.values()}

        for blob in sorted(self.root.glob("dta_*.npz")):
            if blob.name not in referenced:
                report.removed_blobs.append(blob.name)
                report.freed_bytes += blob.stat().st_size
                if not dry_run:
                    blob.unlink()

        live: Dict[str, int] = {}  # key -> blob size
        for key, entry in list(entries.items()):
            blob = self.root / entry["file"]
            if not blob.is_file():
                report.dropped_entries.append(key)
                if not dry_run:
                    del entries[key]
                continue
            live[key] = blob.stat().st_size

        if max_bytes is not None:
            total = sum(live.values())
            oldest_first = sorted(
                live, key=lambda k: (entries[k].get("created", ""), k))
            for key in oldest_first:
                if total <= max_bytes:
                    break
                blob = self.root / entries[key]["file"]
                report.removed_blobs.append(blob.name)
                report.dropped_entries.append(key)
                report.freed_bytes += live[key]
                total -= live.pop(key)
                if not dry_run:
                    blob.unlink()
                    del entries[key]

        report.kept_bytes = sum(live.values())
        if not dry_run and (report.removed_blobs or report.dropped_entries):
            self._write_manifest(manifest)
        return report
