"""Versioned on-disk store for characterization traces.

Replaces the old flat-file ``.npz`` cache: a :class:`TraceStore` is a
directory holding one ``manifest.json`` plus one compressed ``.npz``
blob per trace.  Entries are keyed by a content hash covering
everything that determines a DTA trace:

* the netlist identity (FU name + structural stats),
* the exact operand stream bytes,
* the operating-corner list,
* the **cell library** (per-cell timings + V/T scaling parameters) —
  the old cache omitted this, so characterizing with a non-default
  library silently returned stale delays, and
* the backend's delay model (``"dta"`` vs ``"glitch"``): the DTA
  engines agree bit-for-bit and share entries; the glitch-accurate
  event engine must not.

The manifest records per-entry metadata (shapes, library fingerprint,
producing backend, creation time) and a store schema version so future
layout changes can migrate or ignore old stores safely.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..circuits.functional_units import FunctionalUnit
from ..sim.dta import DelayTrace
from ..timing.cells import CellLibrary
from ..timing.corners import OperatingCondition
from ..workloads.streams import OperandStream

#: Bump when the on-disk layout or key derivation changes.
STORE_VERSION = 1


def default_cache_dir() -> Path:
    """Default on-disk store location (override with REPRO_CACHE_DIR)."""
    return Path(os.environ.get("REPRO_CACHE_DIR",
                               Path.home() / ".cache" / "repro-tevot"))


def library_fingerprint(library: CellLibrary) -> str:
    """Stable content hash of a cell library's timing model.

    Covers every per-cell timing figure and the V/T scaling parameters
    — two libraries with the same fingerprint produce identical delay
    matrices for any netlist.
    """
    h = hashlib.sha256()
    for gtype in sorted(library.timings, key=lambda g: g.value):
        t = library.timings[gtype]
        h.update(f"{gtype.value}:{t.intrinsic!r},{t.load!r},"
                 f"{t.vth_offset!r};".encode())
    h.update(repr(library.scaling).encode())
    return h.hexdigest()[:16]


def trace_key(fu: FunctionalUnit, stream: OperandStream,
              conditions: Sequence[OperatingCondition],
              library: CellLibrary,
              delay_model: str = "dta") -> str:
    """Content hash identifying one characterization trace."""
    h = hashlib.sha256()
    h.update(f"v{STORE_VERSION};".encode())
    h.update(fu.name.encode())
    h.update(str(fu.netlist.stats()).encode())
    h.update(np.ascontiguousarray(stream.a).tobytes())
    h.update(np.ascontiguousarray(stream.b).tobytes())
    for c in conditions:
        h.update(f"{c.voltage:.4f},{c.temperature:.2f};".encode())
    h.update(library_fingerprint(library).encode())
    h.update(delay_model.encode())
    return h.hexdigest()[:24]


class TraceStore:
    """Manifest-backed store of delay traces under one root directory."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    # -- manifest -------------------------------------------------------------

    def _read_manifest(self) -> Dict:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return {"store_version": STORE_VERSION, "entries": {}}
        if manifest.get("store_version") != STORE_VERSION:
            # incompatible layout: ignore rather than misread
            return {"store_version": STORE_VERSION, "entries": {}}
        return manifest

    def _write_manifest(self, manifest: Dict) -> None:
        # per-writer tmp name: concurrent writers may still lose one
        # another's newest entry (last rename wins) but can never
        # interleave bytes into a corrupt manifest, and a lost entry
        # only degrades to the blob-glob fallback in get()
        tmp = self.root / f".manifest.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        tmp.replace(self.manifest_path)

    def entries(self) -> Dict[str, Dict]:
        """Key -> metadata for everything in the store."""
        return dict(self._read_manifest()["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()["entries"]

    # -- traces ---------------------------------------------------------------

    def get(self, key: str, conditions: Sequence[OperatingCondition],
            inputs: Optional[np.ndarray] = None) -> Optional[DelayTrace]:
        """Load the trace stored under ``key``, or None on a miss."""
        entry = self._read_manifest()["entries"].get(key)
        if entry is not None:
            blob = self.root / entry["file"]
        else:
            # blob names embed the key, so a manifest entry lost to a
            # concurrent writer still resolves instead of re-simulating
            blob = next(iter(self.root.glob(f"dta_*_{key}.npz")), None)
            if blob is None:
                return None
        try:
            data = np.load(blob)
        except (FileNotFoundError, OSError):
            return None
        return DelayTrace(data["delays"], list(conditions), inputs=inputs)

    def put(self, key: str, trace: DelayTrace, *, fu_name: str,
            stream_name: str, library: CellLibrary,
            delay_model: str = "dta", backend: str = "") -> Path:
        """Persist a trace and record it in the manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        fname = f"dta_{fu_name}_{stream_name}_{key}.npz"
        np.savez_compressed(self.root / fname, delays=trace.delays)
        manifest = self._read_manifest()
        manifest["entries"][key] = {
            "file": fname,
            "fu": fu_name,
            "stream": stream_name,
            "n_conditions": int(trace.delays.shape[0]),
            "n_cycles": int(trace.delays.shape[1]),
            "library": library_fingerprint(library),
            "delay_model": delay_model,
            "backend": backend,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        self._write_manifest(manifest)
        return self.root / fname
