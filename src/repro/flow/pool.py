"""Persistent warm worker pool for campaign shard execution.

The legacy ``ProcessPoolExecutor`` path re-pickles the netlist, the
whole input stream, and the delay matrix for *every* shard, and each
worker re-lowers the program from scratch — which is why the simspeed
sharding bench historically showed every multi-worker config *losing*
to a single worker.  This module replaces it with long-lived workers
that amortize all of that:

* **Warm program state.**  Workers are forked once per pool and cache
  the unpickled netlist (and therefore the lowered
  :class:`~repro.sim.compile.CompiledNetlist`, its delay tiles, and its
  corner-major arrival scratch — all single-slot-cached on the program)
  per *netlist fingerprint*, and the shard payload (input stream +
  delay matrix) per *job fingerprint*.  Registrations are delivered
  lazily, once per (worker, fingerprint); after that a task is a tiny
  ``(job_key, corner_range, cycle_range)`` descriptor.
* **Shared-memory results.**  The parent preallocates one
  ``multiprocessing.shared_memory`` segment per job holding the full
  stitched ``(n_corners, n_cycles)`` float32 delay matrix; each worker
  writes its shard directly at its corner × cycle offset, so stitching
  is a single parent-side copy instead of per-shard pickle + assemble.
  Registration payloads ride the same transport (one write, N reads).
* **Pickle fallback.**  When shared memory is unavailable (no
  ``fork`` start method, ``/dev/shm`` unusable, ``REPRO_POOL_NO_SHM``)
  or a payload is below the crossover threshold, blobs travel through
  the worker pipes and shard results return pickled — bit-identical
  either way.
* **Crash robustness.**  A worker that dies mid-task (OOM-killed,
  segfault) is respawned in place and its task reissued; a fresh
  worker starts with an empty registration set, so re-registration is
  automatic.  A task that repeatedly kills workers raises instead of
  looping.  ``close()`` (also via ``with`` or garbage collection —
  a ``weakref.finalize`` backstop) reaps every worker and unlinks
  every segment, so nothing survives the parent.
* **Hung-worker watchdog.**  A worker that neither answers nor dies
  would wedge ``connection.wait`` forever; with ``task_timeout_s``
  set (ctor arg or ``REPRO_POOL_TASK_TIMEOUT_S``; 0 = off, the
  default — campaign shards may legitimately run long), a worker
  holding one task past the bound is SIGKILLed and the task reissued
  through the same path a crashed worker's would be — the identical
  discipline the serving cluster applies, via the shared
  :mod:`repro.flow.watchdog` mechanics.

The pool is deliberately backend-agnostic: a task runs
``get_backend(name).run_delays`` on the registered payload slice, so
every capability-gated backend (including the event engine's
corner-only sharding) works unchanged.  Fork-started workers also
inherit any programs already compiled in the parent, making the first
shard of a parent-warm netlist warm too.
"""

from __future__ import annotations

import os
import pickle
import secrets
import time
import traceback
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - stdlib since 3.8, but keep a soft gate
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

from ..testing import faults
from .watchdog import kill_worker

__all__ = [
    "JobProgram",
    "PoolRunResult",
    "TASK_TIMEOUT_ENV",
    "TaskResult",
    "WorkerPool",
]

#: Env default for :class:`WorkerPool`'s per-task watchdog (seconds;
#: 0 disables — the shipped default).
TASK_TIMEOUT_ENV = "REPRO_POOL_TASK_TIMEOUT_S"

#: Result matrices smaller than this return via the pickle path even
#: when shared memory is available — below the crossover the one-copy
#: win cannot repay segment create/attach/unlink syscalls.
SHM_MIN_RESULT_BYTES = 64 * 1024

#: Registration blobs smaller than this travel through the worker pipe
#: (same crossover reasoning as :data:`SHM_MIN_RESULT_BYTES`).
SHM_MIN_BLOB_BYTES = 64 * 1024

#: A task that sees its worker die this many times is abandoned with a
#: RuntimeError — the task itself is almost certainly the killer.
MAX_REISSUES = 2

#: Per-worker registration caches (LRU, parent-coordinated): enough to
#: keep a whole paper campaign warm without letting a long-lived pool
#: accumulate every stream it ever saw.
_WORKER_JOB_CACHE = 8
_PARENT_BLOB_CACHE = 8

#: Env var naming a crash-token file: a worker that consumes a token at
#: task receipt hard-kills itself mid-task.  The file holds a decimal
#: token count (any other content means 1); consuming the last token
#: removes the file (atomically — concurrent consumers race on the
#: ``os.remove`` and exactly one wins).  Deterministic test hook for
#: the respawn/reissue path — see tests/flow/test_pool.py.
CRASH_FILE_ENV = "REPRO_POOL_CRASH_FILE"

#: Fault point hit at task receipt in every worker (see
#: :mod:`repro.testing.faults`; exercises the respawn/reissue path).
SITE_TASK = faults.register_site("pool.worker.task")

#: ``/dev/shm`` segment name prefix; CI's leak check globs for it.
SHM_PREFIX = "repro_pool_"

Shard = Tuple[int, int, int, int]


@dataclass
class JobProgram:
    """Everything a worker needs to simulate shards of one job.

    ``netlist_key`` fingerprints the netlist alone (lowering is
    library-independent), so jobs sharing a netlist share the worker's
    compiled program; the job key used in :meth:`WorkerPool.run_tasks`
    fingerprints the full (netlist, stream, corners, library, backend)
    tuple.
    """

    netlist: object  # repro.circuits.netlist.Netlist
    netlist_key: str
    inputs: np.ndarray        # (n_cycles + 1, n_inputs) uint8
    delay_matrix: np.ndarray  # (n_corners, n_gates) float
    backend: str
    chunk_cycles: Optional[int] = None
    threads: Optional[int] = None
    #: pre-pickled netlist (callers that fingerprinted the pickle pass
    #: it along so registration does not pickle a second time).
    netlist_bytes: Optional[bytes] = None

    @property
    def n_cycles(self) -> int:
        return self.inputs.shape[0] - 1

    @property
    def n_corners(self) -> int:
        return self.delay_matrix.shape[0]


@dataclass
class TaskResult:
    """Execution record of one shard task."""

    job_key: str
    shard: Shard
    seconds: float
    #: the worker already held this netlist's compiled program when the
    #: task arrived (False exactly for a worker's first contact with a
    #: netlist after spawn/respawn).
    warm: bool
    #: pool slot that ran the shard.
    worker: int
    #: shard delay matrix — only on the pickle return path (None when
    #: the worker wrote straight into the job's shared-memory buffer).
    delays: Optional[np.ndarray] = None


@dataclass
class PoolRunResult:
    """One :meth:`WorkerPool.run_tasks` batch.

    ``job_delays`` holds the fully stitched ``(n_corners, n_cycles)``
    matrix for every job that used the shared-memory return path;
    pickle-path jobs are stitched by the caller from
    ``tasks[i].delays``.
    """

    job_delays: Dict[str, np.ndarray]
    tasks: List[TaskResult]


# -- worker side ---------------------------------------------------------------


def _read_blob(transport) -> bytes:
    if transport[0] == "raw":
        return transport[1]
    _, name, nbytes = transport
    seg = shared_memory.SharedMemory(name=name)
    try:
        return bytes(seg.buf[:nbytes])
    finally:
        seg.close()


def _pool_worker_main(conn) -> None:
    """Worker loop: registration + task messages until stop/EOF.

    State lives for the worker's lifetime: ``netlists`` pins the
    unpickled netlist objects (and thereby their cached compiled
    programs, delay tiles, and scratch), ``jobs`` the per-job payloads.
    The parent coordinates eviction (``release``), so the two sides
    never disagree about what is registered.
    """
    netlists: Dict[str, object] = {}
    warm_keys = set()  # netlist keys this worker has simulated before
    jobs: Dict[str, Dict] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "netlist":
                _, nl_key, transport = msg
                netlists[nl_key] = pickle.loads(_read_blob(transport))
            elif kind == "job":
                _, job_key, nl_key, transport = msg
                payload = pickle.loads(_read_blob(transport))
                payload["nl_key"] = nl_key
                jobs[job_key] = payload
            elif kind == "release":
                jobs.pop(msg[1], None)
            elif kind == "run":
                _, task_id, job_key, shard, out = msg
                # deterministic crash hooks (fault plan rides the env,
                # so forked workers honor it): see repro.testing.faults
                faults.fault_point(SITE_TASK)
                faults.crash_token_hook(CRASH_FILE_ENV)
                try:
                    result = _run_shard(netlists, warm_keys, jobs,
                                        job_key, shard, out)
                    conn.send(("done", task_id) + result)
                except BaseException:
                    conn.send(("err", task_id, traceback.format_exc()))
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _run_shard(netlists: Dict[str, object], warm_keys: set,
               jobs: Dict[str, Dict], job_key: str, shard: Shard, out
               ) -> Tuple[float, bool, Optional[np.ndarray]]:
    from ..sim.engine import get_backend

    job = jobs[job_key]
    nl_key = job["nl_key"]
    warm = nl_key in warm_keys
    c0, c1, t0, t1 = shard
    start = time.perf_counter()
    backend = get_backend(job["backend"])
    # shard (c0, c1, t0, t1) simulates input rows [t0, t1 + 1) (one
    # leading state row) against delay rows c0:c1 — identical slicing
    # to the parent-side legacy path, hence bit-identical stitches
    delays = backend.run_delays(
        netlists[nl_key], job["inputs"][t0:t1 + 1],
        job["delay_matrix"][c0:c1],
        chunk_cycles=job["chunk_cycles"],
        threads=job["threads"]).delays
    seconds = time.perf_counter() - start
    warm_keys.add(nl_key)
    if out is not None:
        name, n_corners, n_cycles, dtype = out
        seg = shared_memory.SharedMemory(name=name)
        try:
            full = np.ndarray((n_corners, n_cycles), dtype=dtype,
                              buffer=seg.buf)
            full[c0:c1, t0:t1] = delays
        finally:
            seg.close()  # parent owns the segment; never unlink here
        return seconds, warm, None
    return seconds, warm, delays


# -- parent side ---------------------------------------------------------------


class _Blob:
    """A pickled registration payload, in shared memory or raw bytes."""

    __slots__ = ("raw", "seg", "nbytes")

    def __init__(self, raw: Optional[bytes], seg, nbytes: int) -> None:
        self.raw = raw
        self.seg = seg
        self.nbytes = nbytes

    def transport(self):
        if self.seg is not None:
            return ("shm", self.seg.name, self.nbytes)
        return ("raw", self.raw)

    def unlink(self) -> None:
        if self.seg is not None:
            try:
                self.seg.close()
                self.seg.unlink()
            except (FileNotFoundError, OSError):
                pass
            self.seg = None


class _Worker:
    """Parent-side handle for one pool slot."""

    __slots__ = ("slot", "process", "conn", "netlists", "jobs", "current",
                 "overdue_at")

    def __init__(self, slot: int, process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.netlists = set()              # registered netlist keys
        self.jobs = OrderedDict()          # registered job keys (LRU)
        self.current: Optional[int] = None  # in-flight task index
        self.overdue_at: Optional[float] = None  # watchdog bound (monotonic)


def _shutdown_workers(workers: List[_Worker],
                      blob_maps: List[Dict[str, _Blob]]) -> None:
    """Finalizer body: reap workers, unlink segments.  Idempotent and
    free of references to the pool object (weakref.finalize contract).
    """
    for w in workers:
        try:
            if w.process.is_alive():
                w.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for w in workers:
        w.process.join(timeout=1.0)
        if w.process.is_alive():
            w.process.terminate()
            w.process.join(timeout=1.0)
        try:
            w.conn.close()
        except OSError:
            pass
    workers.clear()
    for blobs in blob_maps:
        for blob in blobs.values():
            blob.unlink()
        blobs.clear()


class WorkerPool:
    """A fixed-width pool of persistent warm simulation workers.

    Parameters
    ----------
    n_workers:
        Number of worker processes (spawned eagerly, ``fork`` start
        method when available so children inherit parent-warm program
        caches and the shared resource tracker).
    use_shm:
        Force the shared-memory transport on/off; None (default)
        auto-detects (requires ``fork`` + a working
        ``multiprocessing.shared_memory``; the ``REPRO_POOL_NO_SHM``
        env var vetoes).  Falls back to pickle per payload below the
        crossover thresholds either way.
    task_timeout_s:
        Per-task watchdog bound in seconds: a worker holding one task
        longer is presumed hung, SIGKILLed, and the task reissued.
        None reads ``REPRO_POOL_TASK_TIMEOUT_S``; 0 disables (the
        default).  Kills are counted in :attr:`watchdog_kills`.
    """

    def __init__(self, n_workers: int,
                 use_shm: Optional[bool] = None,
                 task_timeout_s: Optional[float] = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        if task_timeout_s is None:
            raw = os.environ.get(TASK_TIMEOUT_ENV, "")
            try:
                task_timeout_s = float(raw) if raw else 0.0
            except ValueError:
                task_timeout_s = 0.0
        if task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 disables)")
        self.task_timeout_s = float(task_timeout_s)
        self.watchdog_kills = 0
        try:
            self._ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = get_context()
        fork = self._ctx.get_start_method() == "fork"
        no_shm_env = os.environ.get("REPRO_POOL_NO_SHM", "") not in ("", "0")
        auto = fork and shared_memory is not None and not no_shm_env
        self.use_shm = auto if use_shm is None else (use_shm and auto)
        if self.use_shm:
            # start the parent's resource tracker *before* forking so
            # every worker inherits it: a worker-local tracker would
            # try to clean segments the parent still owns at worker
            # exit (harmless but noisy); one shared tracker's
            # registration set is idempotent across processes
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        self._uid = secrets.token_hex(4)
        self._seq = 0
        self._workers: List[_Worker] = []
        self._netlist_blobs: "OrderedDict[str, _Blob]" = OrderedDict()
        self._job_blobs: "OrderedDict[str, _Blob]" = OrderedDict()
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._workers,
            [self._netlist_blobs, self._job_blobs])
        for slot in range(n_workers):
            self._workers.append(self._spawn(slot))

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Reap every worker and unlink every segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def n_alive(self) -> int:
        """Live worker processes (tests/leak checks)."""
        return sum(1 for w in self._workers if w.process.is_alive())

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,),
            name=f"repro-pool-{self._uid}-{slot}", daemon=True)
        process.start()
        child_conn.close()
        return _Worker(slot, process, parent_conn)

    def _respawn(self, worker: _Worker) -> _Worker:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
        worker.process.join(timeout=1.0)
        fresh = self._spawn(worker.slot)
        self._workers[worker.slot] = fresh
        return fresh

    # -- registration transport ---------------------------------------------

    def _shm_name(self) -> str:
        self._seq += 1
        return f"{SHM_PREFIX}{os.getpid()}_{self._uid}_{self._seq}"

    def _make_blob(self, data: bytes) -> _Blob:
        if self.use_shm and len(data) >= SHM_MIN_BLOB_BYTES:
            try:
                seg = shared_memory.SharedMemory(
                    create=True, name=self._shm_name(),
                    size=max(1, len(data)))
            except OSError:
                self.use_shm = False  # /dev/shm unusable: pickle-only
            else:
                seg.buf[:len(data)] = data
                return _Blob(None, seg, len(data))
        return _Blob(data, None, len(data))

    def _cached_blob(self, cache: "OrderedDict[str, _Blob]", key: str,
                     build) -> _Blob:
        blob = cache.get(key)
        if blob is None:
            blob = self._make_blob(build())
            cache[key] = blob
            while len(cache) > _PARENT_BLOB_CACHE:
                cache.popitem(last=False)[1].unlink()
        cache.move_to_end(key)
        return blob

    def _ensure_registered(self, worker: _Worker, job_key: str,
                           progs: Dict[str, JobProgram]) -> None:
        prog = progs[job_key]
        nl_key = prog.netlist_key
        if nl_key not in worker.netlists:
            blob = self._cached_blob(
                self._netlist_blobs, nl_key,
                lambda: prog.netlist_bytes if prog.netlist_bytes is not None
                else pickle.dumps(prog.netlist,
                                  protocol=pickle.HIGHEST_PROTOCOL))
            worker.conn.send(("netlist", nl_key, blob.transport()))
            worker.netlists.add(nl_key)
        if job_key not in worker.jobs:
            blob = self._cached_blob(
                self._job_blobs, job_key,
                lambda: pickle.dumps(
                    {"inputs": prog.inputs,
                     "delay_matrix": prog.delay_matrix,
                     "backend": prog.backend,
                     "chunk_cycles": prog.chunk_cycles,
                     "threads": prog.threads},
                    protocol=pickle.HIGHEST_PROTOCOL))
            worker.conn.send(("job", job_key, nl_key, blob.transport()))
            worker.jobs[job_key] = True
            while len(worker.jobs) > _WORKER_JOB_CACHE:
                evicted, _ = worker.jobs.popitem(last=False)
                worker.conn.send(("release", evicted))
        else:
            worker.jobs.move_to_end(job_key)

    # -- execution ----------------------------------------------------------

    def run_tasks(self, progs: Dict[str, JobProgram],
                  tasks: Sequence[Tuple[str, Shard]],
                  on_result=None) -> PoolRunResult:
        """Execute shard tasks across the pool.

        ``tasks`` is an ordered list of ``(job_key, shard)`` pairs
        (keys index ``progs``); the returned ``tasks`` list is aligned
        with it.  Jobs whose stitched result crosses the shared-memory
        threshold come back fully assembled in ``job_delays``; others
        return per-task ``delays`` for the caller to stitch.

        ``on_result(idx, task_result, delays)`` fires as each task
        completes (``idx`` indexes ``tasks``): the campaign layer
        journals finished shards through it.  ``delays`` is the shard
        matrix — on the shared-memory path a *view* into the live
        segment, valid only during the callback.  Callback exceptions
        propagate and abort the batch.
        """
        if self.closed:
            raise RuntimeError("WorkerPool is closed")
        tasks = list(tasks)
        if not tasks:
            return PoolRunResult({}, [])
        for key, _ in tasks:
            if key not in progs:
                raise KeyError(f"task references unknown job {key!r}")

        out_segs: Dict[str, object] = {}
        out_meta: Dict[str, Tuple[int, int]] = {}
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        try:
            if self.use_shm:
                for key, prog in progs.items():
                    nbytes = prog.n_corners * prog.n_cycles * 4
                    if nbytes < SHM_MIN_RESULT_BYTES:
                        continue
                    try:
                        seg = shared_memory.SharedMemory(
                            create=True, name=self._shm_name(),
                            size=nbytes)
                    except OSError:
                        continue  # per-job fallback to pickle return
                    out_segs[key] = seg
                    out_meta[key] = (prog.n_corners, prog.n_cycles)

            pending = deque(range(len(tasks)))
            reissues: Dict[int, int] = {}
            error: Optional[str] = None

            def fail(idx: int, why: str) -> Optional[int]:
                """Requeue a task whose worker died, or give up."""
                reissues[idx] = reissues.get(idx, 0) + 1
                if reissues[idx] > MAX_REISSUES:
                    return idx
                pending.appendleft(idx)
                return None

            while True:
                if error is None:
                    for w in list(self._workers):
                        if not pending:
                            break
                        if w.current is not None:
                            continue
                        idx = pending.popleft()
                        key, shard = tasks[idx]
                        try:
                            self._ensure_registered(w, key, progs)
                            seg = out_segs.get(key)
                            out = None
                            if seg is not None:
                                nc, nt = out_meta[key]
                                out = (seg.name, nc, nt, "float32")
                            w.conn.send(("run", idx, key,
                                         tuple(shard), out))
                            w.current = idx
                            w.overdue_at = (
                                time.monotonic() + self.task_timeout_s
                                if self.task_timeout_s else None)
                        except (BrokenPipeError, OSError):
                            # worker died between tasks: respawn (fresh
                            # registration state) and retry elsewhere
                            if fail(idx, "dispatch") is not None:
                                error = (f"worker died {MAX_REISSUES + 1}x "
                                         f"dispatching task {idx}")
                            self._respawn(w)
                busy = [w for w in self._workers if w.current is not None]
                if not busy:
                    if pending and error is None:
                        continue
                    break
                wait_s = None
                bounds = [w.overdue_at for w in busy
                          if w.overdue_at is not None]
                if bounds:
                    wait_s = max(0.0, min(bounds) - time.monotonic())
                ready = connection.wait([w.conn for w in busy],
                                        timeout=wait_s)
                if not ready:
                    # watchdog: a worker blew its per-task bound — it
                    # neither answered nor died, so kill it and reissue
                    # its task through the same path a crash would take
                    now = time.monotonic()
                    for w in busy:
                        if w.overdue_at is None or now < w.overdue_at:
                            continue
                        idx = w.current
                        w.current = None
                        self.watchdog_kills += 1
                        kill_worker(w.process)
                        self._respawn(w)
                        if idx is not None and error is None:
                            if fail(idx, "hang") is not None:
                                error = (
                                    f"task {idx} ({tasks[idx][0]!r} shard "
                                    f"{tasks[idx][1]}) hung its worker "
                                    f"{MAX_REISSUES + 1} times")
                    continue
                for conn_ in ready:
                    w = next(x for x in busy if x.conn is conn_)
                    try:
                        msg = w.conn.recv()
                    except (EOFError, OSError):
                        idx = w.current
                        w.current = None
                        self._respawn(w)
                        if idx is not None and error is None:
                            if fail(idx, "crash") is not None:
                                error = (
                                    f"task {idx} ({tasks[idx][0]!r} shard "
                                    f"{tasks[idx][1]}) killed its worker "
                                    f"{MAX_REISSUES + 1} times")
                        continue
                    if msg[0] == "done":
                        _, idx, seconds, warm, delays = msg
                        key, shard = tasks[idx]
                        results[idx] = TaskResult(
                            job_key=key, shard=tuple(shard),
                            seconds=seconds, warm=warm,
                            worker=w.slot, delays=delays)
                        w.current = None
                        if on_result is not None:
                            shard_view = delays
                            if shard_view is None and key in out_segs:
                                nc, nt = out_meta[key]
                                full = np.ndarray(
                                    (nc, nt), dtype=np.float32,
                                    buffer=out_segs[key].buf)
                                c0, c1, t0, t1 = shard
                                shard_view = full[c0:c1, t0:t1]
                            on_result(idx, results[idx], shard_view)
                    elif msg[0] == "err":
                        _, idx, tb = msg
                        w.current = None
                        if error is None:
                            error = tb
            if error is not None:
                raise RuntimeError(f"worker pool task failed: {error}")

            job_delays: Dict[str, np.ndarray] = {}
            for key, seg in out_segs.items():
                nc, nt = out_meta[key]
                job_delays[key] = np.ndarray(
                    (nc, nt), dtype=np.float32, buffer=seg.buf).copy()
            return PoolRunResult(job_delays, results)  # type: ignore[arg-type]
        finally:
            for seg in out_segs.values():
                try:
                    seg.close()
                    seg.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
