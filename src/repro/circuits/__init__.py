"""Gate-level circuit substrate: netlists, builder DSL, and FU generators."""

from .builder import Bus, CircuitBuilder
from .functional_units import (
    PAPER_UNITS,
    FunctionalUnit,
    available_units,
    build_functional_unit,
)
from .netlist import Gate, GateType, Netlist, NetlistError, evaluate_gate

__all__ = [
    "Bus",
    "CircuitBuilder",
    "FunctionalUnit",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "PAPER_UNITS",
    "available_units",
    "build_functional_unit",
    "evaluate_gate",
]
