"""Functional-unit abstraction: a combinational netlist with registered IO.

The paper studies four FUs — 32-bit integer add/multiply and binary32
floating-point add/multiply.  A :class:`FunctionalUnit` bundles the
gate-level netlist with operand encode/decode helpers and a software
reference function, and defines the *register boundary*: primary inputs
are driven from input registers at each clock edge and primary outputs
feed output registers, so the per-cycle dynamic delay is the latest
arrival at the output-register D-pins — the paper's DTA definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from . import refmodels
from .adders import build_int_adder
from .float_units import build_fp_adder, build_fp_multiplier
from .multipliers import build_int_multiplier
from .netlist import Netlist


@dataclass
class FunctionalUnit:
    """A two-operand combinational FU with a register boundary.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"int_add"``.
    netlist:
        The combinational core.  ``primary_inputs`` hold operand ``a``
        bits (LSB-first) followed by operand ``b`` bits; outputs are the
        result bits (plus flags such as carry-out, depending on the FU).
    operand_width:
        Bits per operand (32 for all paper FUs).
    result_width:
        Bits of the architectural result word.
    reference:
        ``f(a_bits_int, b_bits_int) -> result_bits_int`` software model.
    """

    name: str
    netlist: Netlist
    operand_width: int
    result_width: int
    reference: Callable[[int, int], int]
    description: str = ""

    def __post_init__(self) -> None:
        expected = 2 * self.operand_width
        if len(self.netlist.primary_inputs) != expected:
            raise ValueError(
                f"{self.name}: netlist has {len(self.netlist.primary_inputs)} "
                f"inputs, expected {expected}"
            )

    # -- operand packing -----------------------------------------------------

    def encode_inputs(self, a: int, b: int) -> List[int]:
        """Pack two operand words into the primary-input bit list."""
        w = self.operand_width
        mask = (1 << w) - 1
        a &= mask
        b &= mask
        return [(a >> i) & 1 for i in range(w)] + [(b >> i) & 1 for i in range(w)]

    def encode_inputs_array(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized packing: ``(n, 2*width)`` uint8 bit matrix."""
        w = self.operand_width
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        shifts = np.arange(w, dtype=np.uint64)
        bits_a = ((a[:, None] >> shifts) & 1).astype(np.uint8)
        bits_b = ((b[:, None] >> shifts) & 1).astype(np.uint8)
        return np.concatenate([bits_a, bits_b], axis=1)

    def decode_result(self, output_bits: Sequence[int]) -> int:
        """Unpack the architectural result word from output bit values."""
        value = 0
        for i in range(self.result_width):
            value |= (int(output_bits[i]) & 1) << i
        return value

    # -- software evaluation ---------------------------------------------------

    def compute(self, a: int, b: int) -> int:
        """Golden result via the software reference model."""
        return self.reference(a, b)

    def simulate_logic(self, a: int, b: int) -> int:
        """Zero-delay gate-level evaluation (slow; used in tests)."""
        out_bits = self.netlist.evaluate_outputs(self.encode_inputs(a, b))
        return self.decode_result(out_bits)

    def stats(self) -> Dict[str, int]:
        return self.netlist.stats()


def _int_add_ref(a: int, b: int) -> int:
    s, _ = refmodels.int_add_ref(a, b, 32)
    return s


def _int_mul_ref(a: int, b: int) -> int:
    return refmodels.int_mul_ref(a, b, 32)


_BUILDERS: Dict[str, Callable[[], FunctionalUnit]] = {}


def _register(name: str, factory: Callable[[], FunctionalUnit]) -> None:
    _BUILDERS[name] = factory


def available_units() -> List[str]:
    """Names of all registered FU generators."""
    return sorted(_BUILDERS)


def build_functional_unit(name: str, **kwargs) -> FunctionalUnit:
    """Build a registered FU by name (``int_add``/``int_mul``/``fp_add``/``fp_mul``).

    Extra keyword arguments are forwarded to the underlying netlist
    generator (e.g. ``architecture="cla"`` for ``int_add``).
    """
    if name not in _BUILDERS:
        raise ValueError(f"unknown FU {name!r}; available: {available_units()}")
    return _BUILDERS[name](**kwargs)


def _make_int_add(architecture: str = "ripple", width: int = 32) -> FunctionalUnit:
    return FunctionalUnit(
        name="int_add",
        netlist=build_int_adder(width, architecture),
        operand_width=width,
        result_width=width,
        reference=lambda a, b, _w=width: refmodels.int_add_ref(a, b, _w)[0],
        description=f"{width}-bit integer adder ({architecture})",
    )


def _make_int_mul(architecture: str = "wallace", width: int = 32) -> FunctionalUnit:
    return FunctionalUnit(
        name="int_mul",
        netlist=build_int_multiplier(width, architecture),
        operand_width=width,
        result_width=width,
        reference=lambda a, b, _w=width: refmodels.int_mul_ref(a, b, _w),
        description=f"{width}-bit integer multiplier ({architecture})",
    )


def _make_fp_add() -> FunctionalUnit:
    return FunctionalUnit(
        name="fp_add",
        netlist=build_fp_adder(),
        operand_width=32,
        result_width=32,
        reference=refmodels.fp32_add_ref,
        description="binary32 floating-point adder (RNE, DAZ/FTZ)",
    )


def _make_fp_mul() -> FunctionalUnit:
    return FunctionalUnit(
        name="fp_mul",
        netlist=build_fp_multiplier(),
        operand_width=32,
        result_width=32,
        reference=refmodels.fp32_mul_ref,
        description="binary32 floating-point multiplier (RNE, DAZ/FTZ)",
    )


_register("int_add", _make_int_add)
_register("int_mul", _make_int_mul)
_register("fp_add", _make_fp_add)
_register("fp_mul", _make_fp_mul)

#: The four functional units evaluated in the paper (Table III order).
PAPER_UNITS = ("int_add", "fp_add", "int_mul", "fp_mul")
