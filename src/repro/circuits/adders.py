"""Gate-level integer adder generators.

Three adder architectures are provided.  The paper's FUs come from
FloPoCo; the exact architecture is not disclosed, so we provide standard
textbook datapaths.  All return ``(sum_bus, carry_out)`` so callers can
compose wider arithmetic (FP mantissa paths use them heavily).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .builder import Bus, CircuitBuilder


def ripple_carry_adder(b: CircuitBuilder, a: Bus, x: Bus,
                       cin: Optional[int] = None) -> Tuple[Bus, int]:
    """Ripple-carry adder: minimal area, carry chain = critical path.

    The long, input-dependent carry chain is exactly what makes dynamic
    delay workload-dependent, so this is the default architecture for the
    INT_ADD functional unit.
    """
    if len(a) != len(x):
        raise ValueError(f"width mismatch: {len(a)} vs {len(x)}")
    carry = cin if cin is not None else b.const_bit(0)
    sums: List[int] = []
    for ai, xi in zip(a, x):
        s, carry = b.full_adder(ai, xi, carry)
        sums.append(s)
    return Bus(sums), carry


def carry_lookahead_adder(b: CircuitBuilder, a: Bus, x: Bus,
                          cin: Optional[int] = None,
                          group: int = 4) -> Tuple[Bus, int]:
    """Group carry-lookahead adder.

    Within each ``group``-bit block the carries are computed from
    propagate/generate terms; blocks are chained.  Shorter critical path
    than ripple, more gates — used to ablate architecture sensitivity.
    """
    if len(a) != len(x):
        raise ValueError(f"width mismatch: {len(a)} vs {len(x)}")
    carry = cin if cin is not None else b.const_bit(0)
    sums: List[int] = []
    n = len(a)
    for start in range(0, n, group):
        end = min(start + group, n)
        p = [b.xor_(a[i], x[i]) for i in range(start, end)]
        g = [b.and_(a[i], x[i]) for i in range(start, end)]
        # Expanded lookahead: c[k+1] = g[k] | p[k]g[k-1] | ... | p[k..0]c0.
        # prefix[k] = p[k] & p[k-1] & ... & p[0] (built incrementally).
        carries = [carry]
        prefix = None
        for k in range(len(p)):
            terms = [g[k]]
            run = p[k]
            for j in range(k - 1, -1, -1):
                terms.append(b.and_(run, g[j]))
                run = b.and_(run, p[j])
            terms.append(b.and_(run, carry))
            carries.append(b.or_reduce(terms))
        for k in range(len(p)):
            sums.append(b.xor_(p[k], carries[k]))
        carry = carries[-1]
    return Bus(sums), carry


def carry_select_adder(b: CircuitBuilder, a: Bus, x: Bus,
                       cin: Optional[int] = None,
                       group: int = 8) -> Tuple[Bus, int]:
    """Carry-select adder: duplicated ripple blocks muxed by the carry."""
    if len(a) != len(x):
        raise ValueError(f"width mismatch: {len(a)} vs {len(x)}")
    carry = cin if cin is not None else b.const_bit(0)
    sums: List[int] = []
    n = len(a)
    first = True
    for start in range(0, n, group):
        end = min(start + group, n)
        blk_a, blk_x = a[start:end], x[start:end]
        if first:
            s, carry = ripple_carry_adder(b, blk_a, blk_x, carry)
            sums.extend(s)
            first = False
            continue
        s0, c0 = ripple_carry_adder(b, blk_a, blk_x, b.const_bit(0))
        s1, c1 = ripple_carry_adder(b, blk_a, blk_x, b.const_bit(1))
        sums.extend(b.mux_bus(carry, s0, s1))
        carry = b.mux(carry, c0, c1)
    return Bus(sums), carry


def subtractor(b: CircuitBuilder, a: Bus, x: Bus) -> Tuple[Bus, int]:
    """``a - x`` two's complement; returns ``(diff, borrow_free)``.

    The carry-out is 1 when ``a >= x`` (no borrow), the usual trick of
    adding the inverted subtrahend with carry-in 1.
    """
    inv = b.not_bus(x)
    return ripple_carry_adder(b, a, inv, b.const_bit(1))


def incrementer(b: CircuitBuilder, a: Bus) -> Tuple[Bus, int]:
    """``a + 1`` via a half-adder chain (cheaper than a full adder)."""
    carry = b.const_bit(1)
    sums: List[int] = []
    for ai in a:
        s, carry = b.half_adder(ai, carry)
        sums.append(s)
    return Bus(sums), carry


ADDER_ARCHITECTURES = {
    "ripple": ripple_carry_adder,
    "cla": carry_lookahead_adder,
    "carry_select": carry_select_adder,
}


def build_int_adder(width: int = 32, architecture: str = "ripple"):
    """Build a standalone integer adder netlist.

    Primary inputs are ``a`` then ``x`` (LSB-first each); outputs are the
    ``width`` sum bits then the carry-out.
    """
    if architecture not in ADDER_ARCHITECTURES:
        raise ValueError(
            f"unknown adder architecture {architecture!r}; "
            f"choose from {sorted(ADDER_ARCHITECTURES)}"
        )
    b = CircuitBuilder(name=f"int_add{width}_{architecture}")
    a = b.input_bus(width, "a")
    x = b.input_bus(width, "b")
    s, cout = ADDER_ARCHITECTURES[architecture](b, a, x)
    b.mark_output_bus(s, "sum")
    b.netlist.mark_output(cout, "cout")
    return b.build()
