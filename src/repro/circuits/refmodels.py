"""Bit-exact software reference models for the gate-level datapaths.

These are "softfloat-lite" integer implementations of the exact
arithmetic the gate netlists implement, used as ground truth in tests.
The FP models implement IEEE-754 binary32 with round-to-nearest-even and
two standard embedded-FPU simplifications (documented in DESIGN.md):

* **DAZ/FTZ** — subnormal inputs are treated as zero and subnormal
  results are flushed to zero (FloPoCo cores and most GPU/DSP FPUs offer
  the same mode).
* NaNs are canonicalized to the quiet NaN ``0x7FC00000``.

For normal inputs producing normal results these models agree bit-exactly
with numpy float32 arithmetic (verified in tests).
"""

from __future__ import annotations

from typing import Tuple

MASK32 = 0xFFFFFFFF
QNAN = 0x7FC00000
INF = 0x7F800000


def int_add_ref(a: int, b: int, width: int = 32) -> Tuple[int, int]:
    """Unsigned add; returns ``(sum mod 2**width, carry_out)``."""
    mask = (1 << width) - 1
    total = (a & mask) + (b & mask)
    return total & mask, (total >> width) & 1


def int_mul_ref(a: int, b: int, width: int = 32, full: bool = False) -> int:
    """Unsigned multiply; low ``width`` bits unless ``full``."""
    mask = (1 << width) - 1
    product = (a & mask) * (b & mask)
    return product if full else product & mask


def decompose32(bits: int) -> Tuple[int, int, int]:
    """Split binary32 bits into ``(sign, exponent, mantissa)``."""
    bits &= MASK32
    return (bits >> 31) & 1, (bits >> 23) & 0xFF, bits & 0x7FFFFF


def compose32(sign: int, exp: int, mant: int) -> int:
    """Assemble binary32 bits from fields (no range checking)."""
    return ((sign & 1) << 31) | ((exp & 0xFF) << 23) | (mant & 0x7FFFFF)


def is_nan32(bits: int) -> bool:
    _, e, m = decompose32(bits)
    return e == 0xFF and m != 0


def is_inf32(bits: int) -> bool:
    _, e, m = decompose32(bits)
    return e == 0xFF and m == 0


def is_zero32_daz(bits: int) -> bool:
    """Zero under DAZ: exponent field 0 (true zeros and subnormals)."""
    _, e, _ = decompose32(bits)
    return e == 0


def _round_nearest_even(sig: int, lsb_weight_bits: int) -> Tuple[int, int]:
    """Round ``sig`` (fixed point with ``lsb_weight_bits`` fractional bits)
    to an integer, RNE.  Returns ``(rounded, inexact)``."""
    if lsb_weight_bits <= 0:
        return sig << (-lsb_weight_bits), 0
    keep = sig >> lsb_weight_bits
    rem = sig & ((1 << lsb_weight_bits) - 1)
    half = 1 << (lsb_weight_bits - 1)
    if rem > half or (rem == half and (keep & 1)):
        keep += 1
    return keep, int(rem != 0)


def fp32_add_ref(a_bits: int, b_bits: int) -> int:
    """Bit-exact binary32 addition (RNE, DAZ/FTZ, canonical qNaN)."""
    a_bits &= MASK32
    b_bits &= MASK32
    sa, ea, ma = decompose32(a_bits)
    sb, eb, mb = decompose32(b_bits)

    if is_nan32(a_bits) or is_nan32(b_bits):
        return QNAN
    a_inf, b_inf = is_inf32(a_bits), is_inf32(b_bits)
    if a_inf and b_inf:
        return compose32(sa, 0xFF, 0) if sa == sb else QNAN
    if a_inf:
        return compose32(sa, 0xFF, 0)
    if b_inf:
        return compose32(sb, 0xFF, 0)

    a_zero, b_zero = ea == 0, eb == 0  # DAZ
    if a_zero and b_zero:
        # (+0)+(+0)=+0, (-0)+(-0)=-0, mixed = +0 (RNE rule)
        return compose32(sa & sb, 0, 0)
    if a_zero:
        return compose32(sb, eb, mb)
    if b_zero:
        return compose32(sa, ea, ma)

    siga = (1 << 23) | ma
    sigb = (1 << 23) | mb

    # Order so that (ea, siga) is the larger magnitude.
    if (ea, siga) < (eb, sigb):
        sa, sb = sb, sa
        ea, eb = eb, ea
        siga, sigb = sigb, siga
    sign = sa

    # Exact arithmetic at the scale of the smaller operand: both values
    # are integer multiples of 2**(eb - 127 - 23), so the sum/difference
    # is an exact Python integer (at most ~280 bits).  This sidesteps all
    # guard/round/sticky subtleties; the gate-level unit implements the
    # equivalent 3-guard-bit scheme and is checked against this model.
    d = ea - eb
    big = siga << d
    total = big + sigb if sa == sb else big - sigb
    if total == 0:
        return compose32(0, 0, 0)  # exact cancellation -> +0 under RNE

    length = total.bit_length()
    exp = eb + length - 24
    if length <= 24:
        mant = total << (24 - length)  # exact, no rounding needed
    else:
        shift = length - 24
        mant = total >> shift
        rem = total & ((1 << shift) - 1)
        half = 1 << (shift - 1)
        if rem > half or (rem == half and (mant & 1)):
            mant += 1
        if mant >> 24:
            mant >>= 1
            exp += 1

    if exp >= 0xFF:
        return compose32(sign, 0xFF, 0)
    if exp <= 0:
        return compose32(sign, 0, 0)  # FTZ
    return compose32(sign, exp, mant & 0x7FFFFF)


def fp32_mul_ref(a_bits: int, b_bits: int) -> int:
    """Bit-exact binary32 multiplication (RNE, DAZ/FTZ, canonical qNaN)."""
    a_bits &= MASK32
    b_bits &= MASK32
    sa, ea, ma = decompose32(a_bits)
    sb, eb, mb = decompose32(b_bits)
    sign = sa ^ sb

    if is_nan32(a_bits) or is_nan32(b_bits):
        return QNAN
    a_inf, b_inf = is_inf32(a_bits), is_inf32(b_bits)
    a_zero, b_zero = ea == 0, eb == 0  # DAZ
    if a_inf or b_inf:
        if a_zero or b_zero:
            return QNAN  # inf * 0
        return compose32(sign, 0xFF, 0)
    if a_zero or b_zero:
        return compose32(sign, 0, 0)

    siga = (1 << 23) | ma
    sigb = (1 << 23) | mb
    product = siga * sigb  # 48 bits, in [2^46, 2^48)
    exp = ea + eb - 127

    if product >> 47:
        exp += 1
        frac_bits = 24  # keep top 24 bits as significand
    else:
        frac_bits = 23
    rounded, _ = _round_nearest_even(product, frac_bits)
    if rounded >> 24:
        rounded >>= 1
        exp += 1

    if exp >= 0xFF:
        return compose32(sign, 0xFF, 0)
    if exp <= 0:
        return compose32(sign, 0, 0)  # FTZ
    return compose32(sign, exp, rounded & 0x7FFFFF)


def float_to_bits(value: float) -> int:
    """Pack a Python float to binary32 bits (round-to-nearest)."""
    import struct

    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    """Unpack binary32 bits to a Python float."""
    import struct

    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]
