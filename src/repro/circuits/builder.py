"""Structural circuit-builder DSL.

:class:`CircuitBuilder` wraps a :class:`~repro.circuits.netlist.Netlist`
with word-level operations on :class:`Bus` objects (LSB-first tuples of
net ids).  The datapath generators (adders, multipliers, FP units) are
written against this DSL, playing the role FloPoCo's generated VHDL plays
in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .netlist import GateType, Netlist


class Bus(tuple):
    """An ordered, LSB-first tuple of net ids forming a word.

    ``bus[0]`` is bit 0 (least significant).  Slicing returns a ``Bus``.
    """

    def __new__(cls, nets: Sequence[int]) -> "Bus":
        return super().__new__(cls, tuple(int(n) for n in nets))

    def __getitem__(self, item):
        result = super().__getitem__(item)
        if isinstance(item, slice):
            return Bus(result)
        return result

    @property
    def width(self) -> int:
        return len(self)

    def msb(self) -> int:
        """Most-significant bit net id."""
        return self[-1]


BitsLike = Union[Bus, Sequence[int]]


class CircuitBuilder:
    """Incrementally build a combinational netlist with word-level ops.

    All multi-bit values are LSB-first.  Methods that produce a single
    bit return a net id (``int``); word-level methods return a
    :class:`Bus`.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.netlist = Netlist(name=name)
        self._const_cache: dict = {}

    # -- inputs / constants ------------------------------------------------

    def input_bit(self, name: Optional[str] = None) -> int:
        """A 1-bit primary input."""
        return self.netlist.add_input(name)

    def input_bus(self, width: int, name: str = "in") -> Bus:
        """A ``width``-bit primary input word (LSB-first)."""
        return Bus([self.netlist.add_input(f"{name}[{i}]") for i in range(width)])

    def const_bit(self, value: int) -> int:
        """A constant 0/1 net (cached per builder)."""
        value = 1 if value else 0
        if value not in self._const_cache:
            gtype = GateType.CONST1 if value else GateType.CONST0
            self._const_cache[value] = self.netlist.add_gate(gtype, ())
        return self._const_cache[value]

    def const_bus(self, value: int, width: int) -> Bus:
        """A constant word of the given width."""
        return Bus([self.const_bit((value >> i) & 1) for i in range(width)])

    def mark_output_bus(self, bus: BitsLike, name: str = "out") -> None:
        """Register every bit of ``bus`` as a primary output."""
        for i, net in enumerate(bus):
            self.netlist.mark_output(net, f"{name}[{i}]")

    # -- single-bit gates ----------------------------------------------------

    def buf(self, a: int) -> int:
        return self.netlist.add_gate(GateType.BUF, (a,))

    def not_(self, a: int) -> int:
        return self.netlist.add_gate(GateType.NOT, (a,))

    def and_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.AND2, (a, b))

    def or_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.OR2, (a, b))

    def nand_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.NAND2, (a, b))

    def nor_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.NOR2, (a, b))

    def xor_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.XOR2, (a, b))

    def xnor_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(GateType.XNOR2, (a, b))

    def mux(self, sel: int, a: int, b: int) -> int:
        """``b if sel else a`` (single bit)."""
        return self.netlist.add_gate(GateType.MUX2, (sel, a, b))

    # -- reduction / tree gates ----------------------------------------------

    def _reduce_tree(self, op, bits: BitsLike) -> int:
        """Balanced binary reduction tree (minimizes logic depth)."""
        bits = list(bits)
        if not bits:
            raise ValueError("cannot reduce empty bit list")
        while len(bits) > 1:
            nxt: List[int] = []
            for i in range(0, len(bits) - 1, 2):
                nxt.append(op(bits[i], bits[i + 1]))
            if len(bits) % 2:
                nxt.append(bits[-1])
            bits = nxt
        return bits[0]

    def and_reduce(self, bits: BitsLike) -> int:
        """AND of all bits (balanced tree)."""
        return self._reduce_tree(self.and_, bits)

    def or_reduce(self, bits: BitsLike) -> int:
        """OR of all bits (balanced tree)."""
        return self._reduce_tree(self.or_, bits)

    def xor_reduce(self, bits: BitsLike) -> int:
        """XOR (parity) of all bits (balanced tree)."""
        return self._reduce_tree(self.xor_, bits)

    # -- bitwise word ops ------------------------------------------------------

    def _check_same_width(self, a: BitsLike, b: BitsLike) -> None:
        if len(a) != len(b):
            raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")

    def not_bus(self, a: BitsLike) -> Bus:
        return Bus([self.not_(x) for x in a])

    def and_bus(self, a: BitsLike, b: BitsLike) -> Bus:
        self._check_same_width(a, b)
        return Bus([self.and_(x, y) for x, y in zip(a, b)])

    def or_bus(self, a: BitsLike, b: BitsLike) -> Bus:
        self._check_same_width(a, b)
        return Bus([self.or_(x, y) for x, y in zip(a, b)])

    def xor_bus(self, a: BitsLike, b: BitsLike) -> Bus:
        self._check_same_width(a, b)
        return Bus([self.xor_(x, y) for x, y in zip(a, b)])

    def mux_bus(self, sel: int, a: BitsLike, b: BitsLike) -> Bus:
        """Word-level 2:1 mux: ``b if sel else a``."""
        self._check_same_width(a, b)
        return Bus([self.mux(sel, x, y) for x, y in zip(a, b)])

    def and_bit_bus(self, bit: int, a: BitsLike) -> Bus:
        """AND a single bit into every bit of a word (masking)."""
        return Bus([self.and_(bit, x) for x in a])

    # -- structural word utilities --------------------------------------------

    def zero_extend(self, a: BitsLike, width: int) -> Bus:
        if len(a) > width:
            raise ValueError("zero_extend to smaller width")
        pad = [self.const_bit(0)] * (width - len(a))
        return Bus(list(a) + pad)

    def shift_left_const(self, a: BitsLike, amount: int, width: int) -> Bus:
        """Constant left shift into a ``width``-bit word (zero fill)."""
        zeros = [self.const_bit(0)] * amount
        bits = zeros + list(a)
        bits = bits[:width]
        while len(bits) < width:
            bits.append(self.const_bit(0))
        return Bus(bits)

    def concat(self, *parts: BitsLike) -> Bus:
        """Concatenate words, first argument in the least-significant spot."""
        bits: List[int] = []
        for p in parts:
            bits.extend(p)
        return Bus(bits)

    # -- arithmetic bit cells ----------------------------------------------------

    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Return ``(sum, carry)``."""
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Return ``(sum, carry)`` — classic 2-XOR/2-AND/1-OR cell."""
        axb = self.xor_(a, b)
        s = self.xor_(axb, cin)
        c = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, c

    # -- comparison helpers -------------------------------------------------------

    def equal_bus(self, a: BitsLike, b: BitsLike) -> int:
        """1 iff words are equal."""
        self._check_same_width(a, b)
        return self.and_reduce([self.xnor_(x, y) for x, y in zip(a, b)])

    def is_zero(self, a: BitsLike) -> int:
        """1 iff all bits are 0."""
        return self.not_(self.or_reduce(a))

    # -- finalize --------------------------------------------------------------

    def build(self) -> Netlist:
        """Validate and return the underlying netlist."""
        self.netlist.validate()
        return self.netlist
