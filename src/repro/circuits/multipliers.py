"""Gate-level integer multiplier generators.

Two architectures: a carry-save *array* multiplier (regular structure;
note that its sequential row accumulation makes any input toggle ripple
through every row, so its dynamic delay is nearly input-independent)
and a *Wallace tree* multiplier (log-depth partial-product reduction,
with a workload-dependent final carry-propagate stage — the default for
the INT_MUL FU, and closer to FloPoCo's compression-tree multipliers).
Both produce the full ``2*width`` product; the FU truncates to
``width`` bits like a machine ``mul`` instruction.
"""

from __future__ import annotations

from typing import List, Tuple

from .adders import ripple_carry_adder
from .builder import Bus, CircuitBuilder


def _partial_products(b: CircuitBuilder, a: Bus, x: Bus) -> List[List[Tuple[int, int]]]:
    """Column-indexed partial products: ``cols[k]`` holds bits of weight 2^k."""
    n, m = len(a), len(x)
    cols: List[List[int]] = [[] for _ in range(n + m)]
    for j in range(m):
        for i in range(n):
            cols[i + j].append(b.and_(a[i], x[j]))
    return cols


def array_multiplier(b: CircuitBuilder, a: Bus, x: Bus,
                     out_width: int = 0) -> Bus:
    """Carry-save array multiplier.

    Rows of partial products are accumulated with full-adder rows; the
    final carry word is resolved with a ripple adder (the usual
    carry-propagate "vector merge" stage).  When ``out_width`` is given
    (e.g. machine-``mul`` low-word semantics) columns at or above it are
    never generated — carries out of column ``out_width - 1`` cannot
    influence the kept bits, so this is exact.
    """
    if len(a) == 0 or len(x) == 0:
        raise ValueError("multiplier operands must be non-empty")
    n, m = len(a), len(x)
    width = out_width if out_width else n + m
    zero = b.const_bit(0)

    # Running carry-save accumulation of partial-product rows.
    acc = ([b.and_(a[i], x[0]) for i in range(min(n, width))]
           + [zero] * max(0, width - n))
    carry_word = [zero] * width
    for j in range(1, m):
        if j >= width:
            break  # row contributes only to truncated columns
        row = [zero] * j + [b.and_(a[i], x[j]) for i in range(min(n, width - j))]
        row += [zero] * (width - len(row))
        new_acc: List[int] = []
        new_carry: List[int] = []
        for k in range(width):
            s, c = b.full_adder(acc[k], row[k], carry_word[k])
            new_acc.append(s)
            new_carry.append(c)
        acc = new_acc
        # carries shift up one weight
        carry_word = [zero] + new_carry[:-1]
    product, _ = ripple_carry_adder(b, Bus(acc), Bus(carry_word))
    return product


def wallace_multiplier(b: CircuitBuilder, a: Bus, x: Bus,
                       out_width: int = 0) -> Bus:
    """Wallace-tree multiplier: 3:2 compress columns until height <= 2.

    ``out_width`` truncates generation to the low columns (see
    :func:`array_multiplier`).
    """
    if len(a) == 0 or len(x) == 0:
        raise ValueError("multiplier operands must be non-empty")
    width = out_width if out_width else len(a) + len(x)
    cols = _partial_products(b, a, x)[:width]

    while any(len(c) > 2 for c in cols):
        new_cols: List[List[int]] = [[] for _ in range(width)]
        for k in range(width):
            bits = cols[k]
            i = 0
            while len(bits) - i >= 3:
                s, c = b.full_adder(bits[i], bits[i + 1], bits[i + 2])
                new_cols[k].append(s)
                if k + 1 < width:
                    new_cols[k + 1].append(c)
                i += 3
            if len(bits) - i == 2:
                s, c = b.half_adder(bits[i], bits[i + 1])
                new_cols[k].append(s)
                if k + 1 < width:
                    new_cols[k + 1].append(c)
                i += 2
            new_cols[k].extend(bits[i:])
        cols = new_cols

    zero = b.const_bit(0)
    op1 = Bus([c[0] if len(c) >= 1 else zero for c in cols])
    op2 = Bus([c[1] if len(c) >= 2 else zero for c in cols])
    product, _ = ripple_carry_adder(b, op1, op2)
    return product


MULTIPLIER_ARCHITECTURES = {
    "array": array_multiplier,
    "wallace": wallace_multiplier,
}


def build_int_multiplier(width: int = 32, architecture: str = "wallace",
                         full_product: bool = False):
    """Build a standalone integer multiplier netlist.

    Outputs the low ``width`` product bits (machine ``mul`` semantics)
    unless ``full_product`` is set, in which case all ``2*width`` bits
    are primary outputs.
    """
    if architecture not in MULTIPLIER_ARCHITECTURES:
        raise ValueError(
            f"unknown multiplier architecture {architecture!r}; "
            f"choose from {sorted(MULTIPLIER_ARCHITECTURES)}"
        )
    b = CircuitBuilder(name=f"int_mul{width}_{architecture}")
    a = b.input_bus(width, "a")
    x = b.input_bus(width, "b")
    out_width = 0 if full_product else width
    product = MULTIPLIER_ARCHITECTURES[architecture](b, a, x, out_width)
    b.mark_output_bus(product, "prod")
    return b.build()
