"""Gate-level netlist core.

A :class:`Netlist` is a flat, combinational gate-level circuit: a set of
*nets* (numbered ``0 .. n_nets-1``) connected by *gates*.  Primary inputs
are nets with no driving gate; every other net is driven by exactly one
gate.  Gates are stored in topological order (guaranteed by construction:
a gate's output net is allocated when the gate is added, so inputs always
refer to already-driven nets), which lets the simulators and STA evaluate
the circuit in a single forward pass.

This is the substrate that replaces the paper's post-layout gate-level
netlists produced by the Synopsys flow; see DESIGN.md section 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class GateType(str, enum.Enum):
    """Primitive cell types available in the technology library.

    The set mirrors a small standard-cell library: inverter/buffer, the
    basic 2-input functions, and a 2:1 mux (``MUX2`` inputs are ordered
    ``(sel, a, b)`` and computes ``b if sel else a``).
    """

    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND2 = "AND2"
    OR2 = "OR2"
    NAND2 = "NAND2"
    NOR2 = "NOR2"
    XOR2 = "XOR2"
    XNOR2 = "XNOR2"
    MUX2 = "MUX2"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Number of input pins for each gate type.
GATE_ARITY: Dict[GateType, int] = {
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND2: 2,
    GateType.OR2: 2,
    GateType.NAND2: 2,
    GateType.NOR2: 2,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.MUX2: 3,
}


def evaluate_gate(gtype: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a single gate on scalar 0/1 inputs.

    This is the reference semantics used by both simulators; the
    vectorized simulator applies the same truth tables to numpy arrays.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.NOT:
        return 1 - inputs[0]
    if gtype is GateType.MUX2:
        sel, d0, d1 = inputs
        return d1 if sel else d0
    a, b = inputs[0], inputs[1]
    if gtype is GateType.AND2:
        return a & b
    if gtype is GateType.OR2:
        return a | b
    if gtype is GateType.NAND2:
        return 1 - (a & b)
    if gtype is GateType.NOR2:
        return 1 - (a | b)
    if gtype is GateType.XOR2:
        return a ^ b
    if gtype is GateType.XNOR2:
        return 1 - (a ^ b)
    raise ValueError(f"unknown gate type: {gtype!r}")


@dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = gtype(*inputs)``."""

    gtype: GateType
    inputs: Tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        expected = GATE_ARITY[self.gtype]
        if len(self.inputs) != expected:
            raise ValueError(
                f"{self.gtype} expects {expected} inputs, got {len(self.inputs)}"
            )


class NetlistError(Exception):
    """Structural problem in a netlist (multiple drivers, cycles, ...)."""


@dataclass
class Netlist:
    """A combinational gate-level circuit.

    Attributes
    ----------
    name:
        Human-readable circuit name (e.g. ``"int_add32"``).
    n_nets:
        Total number of nets.  Net ids are dense, ``0 .. n_nets-1``.
    gates:
        Gates in topological order.
    primary_inputs:
        Net ids driven from outside the circuit.
    primary_outputs:
        Net ids observed from outside (register D-pins in an FU).
    net_names:
        Optional debug names for nets (``{net_id: name}``).
    """

    name: str = "netlist"
    n_nets: int = 0
    gates: List[Gate] = field(default_factory=list)
    primary_inputs: List[int] = field(default_factory=list)
    primary_outputs: List[int] = field(default_factory=list)
    net_names: Dict[int, str] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def new_net(self, name: Optional[str] = None) -> int:
        """Allocate a fresh net id."""
        net = self.n_nets
        self.n_nets += 1
        if name is not None:
            self.net_names[net] = name
        return net

    def add_input(self, name: Optional[str] = None) -> int:
        """Allocate a net and register it as a primary input."""
        net = self.new_net(name)
        self.primary_inputs.append(net)
        return net

    def add_gate(self, gtype: GateType, inputs: Sequence[int],
                 name: Optional[str] = None) -> int:
        """Add a gate driving a freshly-allocated net; return the net id.

        Inputs must already exist, which keeps ``gates`` topologically
        ordered by construction.
        """
        for i in inputs:
            if not (0 <= i < self.n_nets):
                raise NetlistError(f"gate input net {i} does not exist yet")
        out = self.new_net(name)
        self.gates.append(Gate(gtype, tuple(inputs), out))
        return out

    def mark_output(self, net: int, name: Optional[str] = None) -> None:
        """Register an existing net as a primary output."""
        if not (0 <= net < self.n_nets):
            raise NetlistError(f"output net {net} does not exist")
        self.primary_outputs.append(net)
        if name is not None:
            self.net_names[net] = name

    # -- structure queries ------------------------------------------------

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    def driver_of(self) -> Dict[int, Gate]:
        """Map net id -> driving gate (primary inputs absent)."""
        return {g.output: g for g in self.gates}

    def fanout_counts(self) -> List[int]:
        """Number of gate input pins each net drives.

        Primary outputs add one load each (the register D-pin), matching
        how a placed design would load the net.
        """
        counts = [0] * self.n_nets
        for g in self.gates:
            for i in g.inputs:
                counts[i] += 1
        for o in self.primary_outputs:
            counts[o] += 1
        return counts

    def levelize(self) -> List[int]:
        """Logic level of each net (primary inputs / consts at level 0).

        Level of a gate output is ``1 + max(level of inputs)``.  Because
        gates are stored topologically this is a single forward pass.
        """
        level = [0] * self.n_nets
        for g in self.gates:
            if g.inputs:
                level[g.output] = 1 + max(level[i] for i in g.inputs)
            else:
                level[g.output] = 0
        return level

    def depth(self) -> int:
        """Maximum logic level over the primary outputs."""
        if not self.gates:
            return 0
        level = self.levelize()
        if self.primary_outputs:
            return max(level[o] for o in self.primary_outputs)
        return max(level[g.output] for g in self.gates)

    def gate_histogram(self) -> Dict[GateType, int]:
        """Count of gates per type, for area/reporting."""
        hist: Dict[GateType, int] = {}
        for g in self.gates:
            hist[g.gtype] = hist.get(g.gtype, 0) + 1
        return hist

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistError` if broken.

        Invariants: single driver per net, every non-input net driven,
        topological gate order, ids in range, no duplicate primary inputs.
        """
        driven = set()
        for pi in self.primary_inputs:
            if pi in driven:
                raise NetlistError(f"duplicate primary input net {pi}")
            driven.add(pi)
        for g in self.gates:
            for i in g.inputs:
                if i not in driven:
                    raise NetlistError(
                        f"gate {g} reads net {i} before it is driven "
                        f"(not topological or floating net)"
                    )
            if g.output in driven:
                raise NetlistError(f"net {g.output} has multiple drivers")
            driven.add(g.output)
        for o in self.primary_outputs:
            if o not in driven:
                raise NetlistError(f"primary output net {o} is undriven")
        if len(driven) != self.n_nets:
            floating = sorted(set(range(self.n_nets)) - driven)
            raise NetlistError(f"floating nets (no driver, not inputs): {floating}")

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, input_values: Dict[int, int]) -> Dict[int, int]:
        """Zero-delay functional evaluation.

        Parameters
        ----------
        input_values:
            ``{primary input net id: 0/1}``; must cover all inputs.

        Returns
        -------
        ``{net id: 0/1}`` for every net in the circuit.
        """
        values: Dict[int, int] = {}
        for pi in self.primary_inputs:
            if pi not in input_values:
                raise NetlistError(f"missing value for primary input net {pi}")
            values[pi] = 1 if input_values[pi] else 0
        for g in self.gates:
            values[g.output] = evaluate_gate(g.gtype, [values[i] for i in g.inputs])
        return values

    def evaluate_outputs(self, input_bits: Sequence[int]) -> List[int]:
        """Evaluate and return primary-output bit values.

        ``input_bits`` is ordered like :attr:`primary_inputs`.
        """
        if len(input_bits) != len(self.primary_inputs):
            raise NetlistError(
                f"expected {len(self.primary_inputs)} input bits, "
                f"got {len(input_bits)}"
            )
        values = self.evaluate(dict(zip(self.primary_inputs, input_bits)))
        return [values[o] for o in self.primary_outputs]

    def stats(self) -> Dict[str, int]:
        """Summary used in reports: gate/net counts and depth."""
        return {
            "nets": self.n_nets,
            "gates": self.n_gates,
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, gates={self.n_gates}, nets={self.n_nets}, "
            f"pi={len(self.primary_inputs)}, po={len(self.primary_outputs)})"
        )
