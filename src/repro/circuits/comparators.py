"""Gate-level magnitude comparators.

The FP adder uses an unsigned comparator on ``{exponent, mantissa}`` to
decide which operand is larger before alignment.
"""

from __future__ import annotations

from typing import Tuple

from .builder import Bus, CircuitBuilder


def unsigned_compare(b: CircuitBuilder, a: Bus, x: Bus) -> Tuple[int, int, int]:
    """Compare unsigned words; returns ``(lt, eq, gt)`` one-hot bits.

    Built as a ripple from MSB to LSB: at each bit, the comparison is
    decided unless the prefix is still equal.
    """
    if len(a) != len(x):
        raise ValueError(f"width mismatch: {len(a)} vs {len(x)}")
    lt = b.const_bit(0)
    gt = b.const_bit(0)
    eq = b.const_bit(1)
    for ai, xi in zip(reversed(a), reversed(x)):
        bit_gt = b.and_(ai, b.not_(xi))
        bit_lt = b.and_(b.not_(ai), xi)
        gt = b.or_(gt, b.and_(eq, bit_gt))
        lt = b.or_(lt, b.and_(eq, bit_lt))
        eq = b.and_(eq, b.xnor_(ai, xi))
    return lt, eq, gt


def unsigned_less_than(b: CircuitBuilder, a: Bus, x: Bus) -> int:
    """1 iff ``a < x`` (unsigned), via the borrow of a subtractor."""
    from .adders import subtractor

    _, no_borrow = subtractor(b, a, x)
    return b.not_(no_borrow)


def build_comparator(width: int = 32):
    """Standalone comparator netlist with lt/eq/gt outputs."""
    b = CircuitBuilder(name=f"cmp{width}")
    a = b.input_bus(width, "a")
    x = b.input_bus(width, "b")
    lt, eq, gt = unsigned_compare(b, a, x)
    b.netlist.mark_output(lt, "lt")
    b.netlist.mark_output(eq, "eq")
    b.netlist.mark_output(gt, "gt")
    return b.build()
