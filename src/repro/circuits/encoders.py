"""Priority encoders and leading-zero counters.

The FP adder's normalization stage needs a leading-zero count (LZC) of
the mantissa sum; it is built recursively from half-width LZCs, the
standard divide-and-conquer structure.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from .builder import Bus, CircuitBuilder


def leading_zero_counter(b: CircuitBuilder, data: Bus) -> Tuple[Bus, int]:
    """Count leading zeros of ``data`` (MSB side).

    Returns ``(count_bus, all_zero_bit)``.  ``count_bus`` has
    ``ceil(log2(width)) + 1`` bits so that the all-zero count (= width)
    is representable when width is a power of two.
    """
    width = len(data)
    if width == 0:
        raise ValueError("LZC input must be non-empty")

    def lzc(bits: List[int]) -> Tuple[List[int], int]:
        # Returns (count LSB-first, all_zero) for the MSB-first view.
        if len(bits) == 1:
            return [b.not_(bits[0])], b.not_(bits[0])
        half = 1 << (math.ceil(math.log2(len(bits))) - 1)
        lo_bits = bits[:len(bits) - half]   # less-significant part
        hi_bits = bits[len(bits) - half:]   # most-significant part
        hi_count, hi_zero = lzc(hi_bits)
        if lo_bits:
            lo_count, lo_zero = lzc(lo_bits)
        else:
            lo_count, lo_zero = [], b.const_bit(1)
        all_zero = b.and_(hi_zero, lo_zero)
        # If the hi half is all zero, count = half + lzc(lo); else lzc(hi).
        out_w = max(len(hi_count), len(lo_count)) + 1
        zero = b.const_bit(0)
        hi_ext = hi_count + [zero] * (out_w - len(hi_count))
        lo_plus = list(lo_count) + [zero] * (out_w - len(lo_count))
        # add `half` to lo count: half is a power of two -> set that bit via
        # incrementing the corresponding bit position with a half-adder chain.
        k = int(math.log2(half))
        carry = b.const_bit(1)
        summed: List[int] = []
        for idx, bit in enumerate(lo_plus):
            if idx < k:
                summed.append(bit)
            else:
                s = b.xor_(bit, carry)
                carry = b.and_(bit, carry)
                summed.append(s)
        count = [b.mux(hi_zero, h, s) for h, s in zip(hi_ext, summed)]
        return count, all_zero

    count, all_zero = lzc(list(data))
    need = math.ceil(math.log2(width)) + 1
    zero = b.const_bit(0)
    count = (count + [zero] * need)[:need]
    return Bus(count), all_zero


def priority_encoder(b: CircuitBuilder, data: Bus) -> Tuple[Bus, int]:
    """Index of the most-significant set bit; returns ``(index, valid)``."""
    width = len(data)
    count, all_zero = leading_zero_counter(b, data)
    # index = width - 1 - clz, computed with a small subtractor on constants.
    from .adders import subtractor

    const = b.const_bus(width - 1, len(count))
    diff, _ = subtractor(b, const, count)
    need = max(1, math.ceil(math.log2(max(width, 2))))
    return Bus(diff[:need]), b.not_(all_zero)


def build_lzc(width: int = 32):
    """Standalone LZC netlist (for tests)."""
    b = CircuitBuilder(name=f"lzc{width}")
    data = b.input_bus(width, "data")
    count, all_zero = leading_zero_counter(b, data)
    b.mark_output_bus(count, "count")
    b.netlist.mark_output(all_zero, "all_zero")
    return b.build()
