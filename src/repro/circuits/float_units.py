"""Gate-level IEEE-754 binary32 adder and multiplier.

Both units implement round-to-nearest-even with DAZ/FTZ subnormal
handling and canonical quiet NaNs — bit-exactly matching the reference
models in :mod:`repro.circuits.refmodels` (verified by randomized and
property-based tests).

The adder uses the classic single-path structure: magnitude swap,
aligning barrel shift with sticky collection, 27-bit add/sub with a
borrowed sticky, leading-zero-count normalization, and a guard-bit RNE
rounder whose exactness argument is spelled out in DESIGN.md.
"""

from __future__ import annotations

from typing import Tuple

from .adders import ripple_carry_adder, subtractor
from .builder import Bus, CircuitBuilder
from .comparators import unsigned_compare
from .encoders import leading_zero_counter
from .multipliers import wallace_multiplier
from .shifters import barrel_shift_left, barrel_shift_right


def fp_fields(b: CircuitBuilder, word: Bus) -> Tuple[int, Bus, Bus]:
    """Split a 32-bit bus into ``(sign, exponent[8], mantissa[23])``."""
    if len(word) != 32:
        raise ValueError("binary32 word must be 32 bits")
    return word[31], word[23:31], word[0:23]


def fp_compose(b: CircuitBuilder, sign: int, exp: Bus, mant: Bus) -> Bus:
    """Assemble a 32-bit word from fields."""
    if len(exp) != 8 or len(mant) != 23:
        raise ValueError("exponent must be 8 bits, mantissa 23 bits")
    return b.concat(mant, exp, Bus([sign]))


def fp_flags(b: CircuitBuilder, exp: Bus, mant: Bus) -> Tuple[int, int, int]:
    """Return ``(is_nan, is_inf, is_zero_daz)`` for decomposed fields."""
    exp_ones = b.and_reduce(exp)
    mant_zero = b.is_zero(mant)
    is_nan = b.and_(exp_ones, b.not_(mant_zero))
    is_inf = b.and_(exp_ones, mant_zero)
    is_zero = b.is_zero(exp)  # DAZ: subnormals count as zero
    return is_nan, is_inf, is_zero


def _qnan_bus(b: CircuitBuilder) -> Bus:
    """Canonical quiet NaN 0x7FC00000 as a constant bus."""
    return b.const_bus(0x7FC00000, 32)


def _round_and_pack(b: CircuitBuilder, sign: int, exp10: Bus, keep: Bus,
                    round_up: int) -> Bus:
    """Shared RNE increment + exponent range check + field packing.

    ``keep`` is the 24-bit significand (implied one at bit 23), ``exp10``
    a 10-bit two's-complement biased exponent.  Returns the packed result
    for the normal path (specials are muxed in by the caller).
    """
    if len(keep) != 24 or len(exp10) != 10:
        raise ValueError("keep must be 24 bits and exp10 10 bits")
    # Increment-by-round_up via a half-adder carry chain.
    carry = round_up
    rounded = []
    for bit in keep:
        s, carry = b.half_adder(bit, carry)
        rounded.append(s)
    ovf = carry  # keep was all ones and round_up -> significand = 2^24
    # When ovf is set the rounded low bits are all zero, so the mantissa
    # field needs no shift: take bits [0..22] unconditionally.
    mant = Bus(rounded[0:23])
    exp_inc, _ = ripple_carry_adder(
        b, exp10, b.zero_extend(Bus([ovf]), 10))

    exp_sign = exp_inc[9]
    # Underflow (FTZ): exponent <= 0, i.e. negative or zero.
    underflow = b.or_(exp_sign, b.is_zero(exp_inc))
    # Overflow: non-negative and >= 255.
    lt255, _, __ = unsigned_compare(b, exp_inc, b.const_bus(255, 10))
    overflow = b.and_(b.not_(exp_sign), b.not_(lt255))

    exp8 = exp_inc[0:8]
    normal = fp_compose(b, sign, exp8, mant)
    inf = fp_compose(b, sign, b.const_bus(0xFF, 8), b.const_bus(0, 23))
    zero = fp_compose(b, sign, b.const_bus(0, 8), b.const_bus(0, 23))
    result = b.mux_bus(overflow, normal, inf)
    result = b.mux_bus(underflow, result, zero)
    return result


def fp_adder(b: CircuitBuilder, a_word: Bus, b_word: Bus) -> Bus:
    """Gate-level binary32 addition datapath; returns the 32-bit result."""
    sa, ea, ma = fp_fields(b, a_word)
    sb, eb, mb = fp_fields(b, b_word)
    a_nan, a_inf, a_zero = fp_flags(b, ea, ma)
    b_nan, b_inf, b_zero = fp_flags(b, eb, mb)

    # --- magnitude ordering: big = X, small = Y --------------------------
    lt, _, __ = unsigned_compare(b, b.concat(ma, ea), b.concat(mb, eb))
    swap = lt  # a < b in magnitude -> operands swap
    sx = b.mux(swap, sa, sb)
    ex = b.mux_bus(swap, ea, eb)
    mx = b.mux_bus(swap, ma, mb)
    sy = b.mux(swap, sb, sa)
    ey = b.mux_bus(swap, eb, ea)
    my = b.mux_bus(swap, mb, ma)

    one = b.const_bit(1)
    sig_x = b.concat(mx, Bus([one]))  # 24 bits, implied one on top
    sig_y = b.concat(my, Bus([one]))

    # --- alignment --------------------------------------------------------
    d, _ = subtractor(b, ex, ey)  # ex >= ey by ordering, 8-bit result
    zero3 = b.const_bus(0, 3)
    small_full = b.concat(zero3, sig_y)  # 27 bits: sig_y << 3
    big = b.concat(zero3, sig_x)         # 27 bits: sig_x << 3
    amt5 = d[0:5]
    d_high = b.or_reduce(d[5:8])  # d >= 32: shift everything out
    shifted, sticky5 = barrel_shift_right(b, small_full, amt5, sticky=True)
    zero27 = b.const_bus(0, 27)
    small_top = b.mux_bus(d_high, shifted, zero27)
    # When d >= 32 all of sig_y is dropped (it is never zero: implied one).
    resid = b.mux(d_high, sticky5, one)

    # --- add / subtract ----------------------------------------------------
    effective_sub = b.xor_(sa, sb)
    sum_bus, carry = ripple_carry_adder(b, big, small_top)
    mag_add = b.concat(sum_bus, Bus([carry]))  # 28 bits
    # big - small_top - resid == big + ~small_top + (1 - resid)
    diff_bus, _ = ripple_carry_adder(b, big, b.not_bus(small_top),
                                     b.not_(resid))
    mag_sub = b.concat(diff_bus, Bus([b.const_bit(0)]))  # 28 bits
    mag = b.mux_bus(effective_sub, mag_add, mag_sub)
    total_zero = b.and_(b.is_zero(mag), b.not_(resid))

    # --- normalization -------------------------------------------------------
    lz, _ = leading_zero_counter(b, mag)  # 6 bits for width 28
    norm = barrel_shift_left(b, mag, lz[0:5])  # lz <= 28 fits in 5 bits
    # exponent of bit 27 position = ex + 1; subtract the shift amount
    ex10 = b.zero_extend(ex, 10)
    ex_p1, _ = ripple_carry_adder(b, ex10, b.const_bus(1, 10))
    exp10, _ = subtractor(b, ex_p1, b.zero_extend(lz[0:5], 10))

    keep = norm[4:28]  # 24-bit significand
    rem_hi = norm[3]
    rem_low_any = b.or_reduce(norm[0:3])
    gt_half = b.and_(rem_hi, rem_low_any)
    eq_half = b.and_(rem_hi, b.not_(rem_low_any))
    round_up = b.or_(gt_half,
                     b.and_(eq_half, b.or_(resid, keep[0])))

    normal_result = _round_and_pack(b, sx, exp10, keep, round_up)

    # --- special-case selection (innermost = lowest priority) ----------------
    zero32 = b.const_bus(0, 32)
    pos_zero = zero32
    both_zero_sign = b.and_(sa, sb)
    both_zero = b.concat(b.const_bus(0, 31), Bus([both_zero_sign]))

    result = b.mux_bus(total_zero, normal_result, pos_zero)
    result = b.mux_bus(b_zero, result, a_word)
    result = b.mux_bus(a_zero, result, b_word)
    result = b.mux_bus(b.and_(a_zero, b_zero), result, both_zero)

    inf_sign = b.mux(a_inf, sb, sa)
    inf_word = fp_compose(b, inf_sign, b.const_bus(0xFF, 8), b.const_bus(0, 23))
    any_inf = b.or_(a_inf, b_inf)
    result = b.mux_bus(any_inf, result, inf_word)

    inf_minus_inf = b.and_(b.and_(a_inf, b_inf), b.xor_(sa, sb))
    any_nan = b.or_(a_nan, b_nan)
    nan_out = b.or_(any_nan, inf_minus_inf)
    result = b.mux_bus(nan_out, result, _qnan_bus(b))
    return result


def fp_multiplier(b: CircuitBuilder, a_word: Bus, b_word: Bus) -> Bus:
    """Gate-level binary32 multiplication datapath; returns the result."""
    sa, ea, ma = fp_fields(b, a_word)
    sb, eb, mb = fp_fields(b, b_word)
    a_nan, a_inf, a_zero = fp_flags(b, ea, ma)
    b_nan, b_inf, b_zero = fp_flags(b, eb, mb)
    sign = b.xor_(sa, sb)

    one = b.const_bit(1)
    sig_a = b.concat(ma, Bus([one]))
    sig_b = b.concat(mb, Bus([one]))
    product = wallace_multiplier(b, sig_a, sig_b)  # 48 bits
    p47 = product[47]

    # significand / guard / sticky for the two normalization cases
    keep = b.mux_bus(p47, product[23:47], product[24:48])
    guard = b.mux(p47, product[22], product[23])
    sticky_lo = b.or_reduce(product[0:22])
    sticky = b.mux(p47, sticky_lo, b.or_(sticky_lo, product[22]))
    round_up = b.and_(guard, b.or_(sticky, keep[0]))

    # exponent: ea + eb - 127 + p47, in 10-bit two's complement
    ea10 = b.zero_extend(ea, 10)
    eb10 = b.zero_extend(eb, 10)
    esum, _ = ripple_carry_adder(b, ea10, eb10)
    esum, _ = ripple_carry_adder(b, esum, b.zero_extend(Bus([p47]), 10))
    exp10, _ = subtractor(b, esum, b.const_bus(127, 10))

    normal_result = _round_and_pack(b, sign, exp10, keep, round_up)

    # --- specials -----------------------------------------------------------
    signed_zero = fp_compose(b, sign, b.const_bus(0, 8), b.const_bus(0, 23))
    signed_inf = fp_compose(b, sign, b.const_bus(0xFF, 8), b.const_bus(0, 23))
    any_zero = b.or_(a_zero, b_zero)
    any_inf = b.or_(a_inf, b_inf)
    any_nan = b.or_(a_nan, b_nan)

    result = b.mux_bus(any_zero, normal_result, signed_zero)
    result = b.mux_bus(any_inf, result, signed_inf)
    inf_times_zero = b.and_(any_inf, any_zero)
    nan_out = b.or_(any_nan, inf_times_zero)
    result = b.mux_bus(nan_out, result, _qnan_bus(b))
    return result


def build_fp_adder():
    """Standalone binary32 adder netlist (inputs ``a`` then ``b``)."""
    b = CircuitBuilder(name="fp_add32")
    a_word = b.input_bus(32, "a")
    b_word = b.input_bus(32, "b")
    out = fp_adder(b, a_word, b_word)
    b.mark_output_bus(out, "result")
    return b.build()


def build_fp_multiplier():
    """Standalone binary32 multiplier netlist (inputs ``a`` then ``b``)."""
    b = CircuitBuilder(name="fp_mul32")
    a_word = b.input_bus(32, "a")
    b_word = b.input_bus(32, "b")
    out = fp_multiplier(b, a_word, b_word)
    b.mark_output_bus(out, "result")
    return b.build()
