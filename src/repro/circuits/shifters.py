"""Barrel shifters and bit-manipulation datapaths.

The FP adder needs a variable right shifter (mantissa alignment) and a
variable left shifter (normalization); both are logarithmic barrel
shifters built from 2:1 mux stages.
"""

from __future__ import annotations

from typing import List

from .builder import Bus, CircuitBuilder


def barrel_shift_right(b: CircuitBuilder, data: Bus, amount: Bus,
                       sticky: bool = False):
    """Logical right shift of ``data`` by the unsigned value of ``amount``.

    Returns the shifted bus, or ``(shifted, sticky_bit)`` when ``sticky``
    is set; the sticky bit ORs every bit shifted out (needed by IEEE-754
    round-to-nearest-even).
    """
    zero = b.const_bit(0)
    cur = list(data)
    sticky_bit = zero
    for stage, sel in enumerate(amount):
        shift = 1 << stage
        if sticky:
            dropped = cur[:shift]
            if dropped:
                stage_sticky = b.or_reduce(dropped)
                masked = b.and_(sel, stage_sticky)
                sticky_bit = b.or_(sticky_bit, masked)
        shifted = cur[shift:] + [zero] * min(shift, len(cur))
        cur = [b.mux(sel, keep, sh) for keep, sh in zip(cur, shifted)]
    if sticky:
        return Bus(cur), sticky_bit
    return Bus(cur)


def barrel_shift_left(b: CircuitBuilder, data: Bus, amount: Bus) -> Bus:
    """Logical left shift of ``data`` by the unsigned value of ``amount``."""
    zero = b.const_bit(0)
    cur = list(data)
    for stage, sel in enumerate(amount):
        shift = 1 << stage
        shifted = [zero] * min(shift, len(cur)) + cur[:-shift]
        if shift >= len(cur):
            shifted = [zero] * len(cur)
        cur = [b.mux(sel, keep, sh) for keep, sh in zip(cur, shifted)]
    return Bus(cur)


def rotate_left(b: CircuitBuilder, data: Bus, amount: Bus) -> Bus:
    """Rotate left by the unsigned value of ``amount`` (mod width)."""
    cur = list(data)
    n = len(cur)
    for stage, sel in enumerate(amount):
        shift = (1 << stage) % n
        rotated = cur[-shift:] + cur[:-shift] if shift else list(cur)
        cur = [b.mux(sel, keep, rot) for keep, rot in zip(cur, rotated)]
    return Bus(cur)


def build_barrel_shifter(width: int = 32, direction: str = "right"):
    """Standalone barrel shifter netlist (for tests and ablations)."""
    import math

    b = CircuitBuilder(name=f"shift_{direction}{width}")
    data = b.input_bus(width, "data")
    amount = b.input_bus(max(1, math.ceil(math.log2(width))), "amount")
    if direction == "right":
        out = barrel_shift_right(b, data, amount)
    elif direction == "left":
        out = barrel_shift_left(b, data, amount)
    else:
        raise ValueError(f"direction must be 'left' or 'right', got {direction!r}")
    b.mark_output_bus(out, "out")
    return b.build()
