"""CART decision trees (numpy-vectorized).

Supports the feature structure TEVoT produces — mostly binary bit
features plus a few low-cardinality numeric features (V, T) — by
scanning all split positions of each sorted feature column with
prefix sums (exact CART); ``max_threshold_candidates`` optionally caps
the scanned positions for very-high-cardinality features (0 = exact).
Split gain is variance reduction (regression) or Gini impurity decrease
(classification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y, resolve_max_features

_LEAF = -1


@dataclass
class _TreeArrays:
    """Flat array representation of a fitted tree."""

    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[np.ndarray] = field(default_factory=list)

    def add_node(self) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(np.zeros(0))
        return len(self.feature) - 1

    @property
    def n_nodes(self) -> int:
        return len(self.feature)


class _BaseDecisionTree(BaseEstimator):
    """Shared CART machinery; subclasses define leaf values and impurity."""

    def __init__(self, max_depth: Optional[int] = None,
                 min_samples_split: int = 2,
                 min_samples_leaf: int = 1,
                 max_features=None,
                 max_threshold_candidates: int = 0,
                 random_state: Optional[int] = None) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_threshold_candidates = max_threshold_candidates
        self.random_state = random_state

    # subclass hooks ------------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _best_split(self, col: np.ndarray, y: np.ndarray):
        """Best ``(gain, threshold)`` for one feature column."""
        raise NotImplementedError

    def _binary_split_gains(self, Xb: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gains for many 0/1 columns at once (threshold fixed at 0.5).

        ``Xb`` is the node's sample-by-binary-feature submatrix.  A
        single matrix product yields the left/right statistics for every
        column simultaneously — the workhorse that makes forests on
        TEVoT's 128 bit-features fast.
        """
        raise NotImplementedError

    # fitting ---------------------------------------------------------------

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        y = self._prepare_targets(y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._binary_cols = np.all((X == 0.0) | (X == 1.0), axis=0)
        self.feature_importances_ = np.zeros(self.n_features_)
        self._tree = _TreeArrays()
        root = self._tree.add_node()
        # iterative depth-first build
        stack = [(root, np.arange(X.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            self._build_node(X, y, node, idx, depth, stack)
        self._finalize()
        self._fitted = True
        return self

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        return y.astype(np.float64)

    def _finalize(self) -> None:
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        t = self._tree
        self.feature_ = np.asarray(t.feature, dtype=np.int64)
        self.threshold_ = np.asarray(t.threshold, dtype=np.float64)
        self.left_ = np.asarray(t.left, dtype=np.int64)
        self.right_ = np.asarray(t.right, dtype=np.int64)
        self.value_ = np.stack(t.value)

    def _build_node(self, X, y, node, idx, depth, stack) -> None:
        t = self._tree
        sub_y = y[idx]
        t.value[node] = self._leaf_value(sub_y)
        if (len(idx) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or self._is_pure(sub_y)):
            return

        n_candidates = resolve_max_features(self.max_features,
                                            self.n_features_)
        if n_candidates < self.n_features_:
            features = self._rng.choice(self.n_features_, n_candidates,
                                        replace=False)
        else:
            features = np.arange(self.n_features_)

        best_gain = 1e-12
        best_feature = -1
        best_threshold = 0.0

        is_binary = self._binary_cols[features]
        binary_feats = features[is_binary]
        if len(binary_feats):
            Xb = X[np.ix_(idx, binary_feats)]
            gains = self._binary_split_gains(Xb, sub_y)
            best = int(np.argmax(gains))
            if gains[best] > best_gain:
                best_gain = float(gains[best])
                best_feature = int(binary_feats[best])
                best_threshold = 0.5

        for f in features[~is_binary]:
            col = X[idx, f]
            gain, threshold = self._best_split(col, sub_y)
            if gain > best_gain:
                best_gain = gain
                best_feature = int(f)
                best_threshold = threshold

        if best_feature < 0:
            return  # no useful split: stay a leaf
        best_mask = X[idx, best_feature] <= best_threshold
        # mean-decrease-in-impurity contribution: gain weighted by the
        # fraction of samples reaching this node
        self.feature_importances_[best_feature] += len(idx) * best_gain

        left = t.add_node()
        right = t.add_node()
        t.feature[node] = best_feature
        t.threshold[node] = best_threshold
        t.left[node] = left
        t.right[node] = right
        stack.append((left, idx[best_mask], depth + 1))
        stack.append((right, idx[~best_mask], depth + 1))

    def _split_positions(self, col_sorted: np.ndarray) -> np.ndarray:
        """Valid split positions in a sorted column.

        Position ``i`` means the left child takes sorted elements
        ``0..i``; a position is valid when the column value actually
        changes there and both children meet ``min_samples_leaf``.
        """
        n = len(col_sorted)
        boundaries = np.nonzero(col_sorted[:-1] != col_sorted[1:])[0]
        msl = self.min_samples_leaf
        if msl > 1:
            boundaries = boundaries[(boundaries + 1 >= msl)
                                    & (n - boundaries - 1 >= msl)]
        if (self.max_threshold_candidates
                and len(boundaries) > self.max_threshold_candidates):
            pick = np.linspace(0, len(boundaries) - 1,
                               self.max_threshold_candidates).astype(int)
            boundaries = boundaries[np.unique(pick)]
        return boundaries

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))

    # prediction ---------------------------------------------------------------

    def _decision_leaves(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index for each sample (vectorized level descent)."""
        self._require_fitted()
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            internal = self.feature_[node] != _LEAF
            if not internal.any():
                return node
            active = np.nonzero(internal)[0]
            feats = self.feature_[node[active]]
            thrs = self.threshold_[node[active]]
            go_left = X[active, feats] <= thrs
            nxt = np.where(go_left,
                           self.left_[node[active]],
                           self.right_[node[active]])
            node[active] = nxt

    @property
    def n_nodes(self) -> int:
        self._require_fitted()
        return len(self.feature_)

    def depth(self) -> int:
        """Maximum depth of the fitted tree."""
        self._require_fitted()
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            for child in (self.left_[node], self.right_[node]):
                if child != _LEAF:
                    depths[child] = depths[node] + 1
        return int(depths.max()) if self.n_nodes else 0


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regressor: leaves predict the mean target; splits maximize
    variance reduction.  TEVoT's delay model ``fd`` builds forests of
    these."""

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([y.mean()])

    def _binary_split_gains(self, Xb: np.ndarray, y: np.ndarray) -> np.ndarray:
        n = len(y)
        total1 = y.sum()
        total2 = float(y @ y)
        n_right = Xb.sum(axis=0)
        n_left = n - n_right
        s1_right = Xb.T @ y
        s2_right = Xb.T @ (y * y)
        s1_left = total1 - s1_right
        s2_left = total2 - s2_right
        with np.errstate(divide="ignore", invalid="ignore"):
            sse_left = s2_left - s1_left * s1_left / n_left
            sse_right = s2_right - s1_right * s1_right / n_right
        parent_sse = total2 - total1 * total1 / n
        gains = (parent_sse - sse_left - sse_right) / n
        msl = self.min_samples_leaf
        invalid = (n_left < msl) | (n_right < msl)
        gains[invalid] = -np.inf
        return np.nan_to_num(gains, nan=-np.inf, posinf=-np.inf,
                             neginf=-np.inf)

    def _best_split(self, col: np.ndarray, y: np.ndarray):
        """Exact variance-reduction scan via sorted prefix sums."""
        order = np.argsort(col, kind="stable")
        col_s = col[order]
        positions = self._split_positions(col_s)
        if len(positions) == 0:
            return 0.0, 0.0
        y_s = y[order]
        n = len(y_s)
        cum1 = np.cumsum(y_s)
        cum2 = np.cumsum(y_s * y_s)
        total1, total2 = cum1[-1], cum2[-1]
        n_left = positions + 1.0
        n_right = n - n_left
        s1l = cum1[positions]
        s2l = cum2[positions]
        sse_left = s2l - s1l * s1l / n_left
        s1r = total1 - s1l
        sse_right = (total2 - s2l) - s1r * s1r / n_right
        parent_sse = total2 - total1 * total1 / n
        gains = (parent_sse - sse_left - sse_right) / n
        best = int(np.argmax(gains))
        pos = positions[best]
        threshold = (col_s[pos] + col_s[pos + 1]) / 2.0
        return float(gains[best]), float(threshold)

    def predict(self, X) -> np.ndarray:
        X = check_X(X, getattr(self, "n_features_", None))
        leaves = self._decision_leaves(X)
        return self.value_[leaves, 0]


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classifier: Gini splits, majority-vote leaves."""

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded.astype(np.int64)

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=len(self.classes_))
        return counts / counts.sum()

    def _binary_split_gains(self, Xb: np.ndarray, y: np.ndarray) -> np.ndarray:
        n = len(y)
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        totals = onehot.sum(axis=0)
        right_counts = Xb.T @ onehot          # (F, k)
        left_counts = totals[None, :] - right_counts
        n_right = Xb.sum(axis=0)
        n_left = n - n_right
        with np.errstate(divide="ignore", invalid="ignore"):
            gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2,
                                     axis=1)
            gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2,
                                      axis=1)
        parent = 1.0 - np.sum((totals / n) ** 2)
        gains = parent - (n_left * gini_left + n_right * gini_right) / n
        msl = self.min_samples_leaf
        invalid = (n_left < msl) | (n_right < msl)
        gains[invalid] = -np.inf
        return np.nan_to_num(gains, nan=-np.inf, posinf=-np.inf,
                             neginf=-np.inf)

    def _best_split(self, col: np.ndarray, y: np.ndarray):
        """Exact Gini-decrease scan via per-class prefix counts."""
        order = np.argsort(col, kind="stable")
        col_s = col[order]
        positions = self._split_positions(col_s)
        if len(positions) == 0:
            return 0.0, 0.0
        y_s = y[order]
        n = len(y_s)
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y_s] = 1.0
        cum = np.cumsum(onehot, axis=0)
        totals = cum[-1]
        left_counts = cum[positions]          # (P, k)
        right_counts = totals - left_counts
        n_left = (positions + 1.0)[:, None]
        n_right = n - n_left
        gini_left = 1.0 - np.sum((left_counts / n_left) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right) ** 2, axis=1)
        parent = 1.0 - np.sum((totals / n) ** 2)
        gains = parent - (n_left[:, 0] * gini_left
                          + n_right[:, 0] * gini_right) / n
        best = int(np.argmax(gains))
        pos = positions[best]
        threshold = (col_s[pos] + col_s[pos + 1]) / 2.0
        return float(gains[best]), float(threshold)

    def predict_proba(self, X) -> np.ndarray:
        X = check_X(X, getattr(self, "n_features_", None))
        leaves = self._decision_leaves(X)
        return self.value_[leaves]

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
