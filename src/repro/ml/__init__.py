"""From-scratch supervised-learning library (sklearn-free).

Implements the four method families the paper evaluates in Table II —
linear/logistic regression, k-nearest neighbours, linear SVM, and
random forests — plus metrics, splitting, and scaling utilities.
"""

from .base import BaseEstimator, NotFittedError
from .forest import RandomForestClassifier, RandomForestRegressor
from .knn import KNeighborsClassifier, KNeighborsRegressor
from .linear import LinearRegression, LogisticRegression
from .metrics import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
)
from .model_selection import KFold, cross_val_score, train_test_split
from .preprocessing import MinMaxScaler, StandardScaler
from .svm import LinearSVC
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "KFold",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "LinearRegression",
    "LinearSVC",
    "LogisticRegression",
    "MinMaxScaler",
    "NotFittedError",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "StandardScaler",
    "accuracy_score",
    "confusion_matrix",
    "cross_val_score",
    "mean_absolute_error",
    "mean_squared_error",
    "precision_recall_f1",
    "r2_score",
    "train_test_split",
]
