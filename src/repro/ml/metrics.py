"""Evaluation metrics for classification and regression."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _check_pair(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of matching entries — the paper's Eq. 4 when applied to
    per-cycle error classes."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2-D count matrix indexed [true, pred] over sorted unique labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(y_true, y_pred, positive=1) -> Dict[str, float]:
    """Binary precision/recall/F1 for the given positive label."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp = float(np.sum((y_true == positive) & (y_pred == positive)))
    fp = float(np.sum((y_true != positive) & (y_pred == positive)))
    fn = float(np.sum((y_true == positive) & (y_pred != positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def mean_squared_error(y_true, y_pred) -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    diff = y_true.astype(np.float64) - y_pred.astype(np.float64)
    return float(np.mean(diff * diff))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true.astype(np.float64)
                                - y_pred.astype(np.float64))))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 = perfect, 0 = mean predictor)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    y_true = y_true.astype(np.float64)
    y_pred = y_pred.astype(np.float64)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
