"""Random forests (bagging over CART trees).

The paper trains TEVoT with scikit-learn's random forest at default
hyperparameters — 10 trees, all features considered at each split —
which these classes mirror.  Feature importances (mean decrease in
impurity across trees) support the paper's interpretability claim.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y
from .tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest(BaseEstimator):
    tree_class = None

    def __init__(self, n_estimators: int = 10,
                 max_depth: Optional[int] = None,
                 min_samples_split: int = 2,
                 min_samples_leaf: int = 1,
                 max_features=None,
                 bootstrap: bool = True,
                 max_threshold_candidates: int = 0,
                 random_state: Optional[int] = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_threshold_candidates = max_threshold_candidates
        self.random_state = random_state

    def _make_tree(self, seed: int):
        return self.tree_class(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            max_threshold_candidates=self.max_threshold_candidates,
            random_state=seed,
        )

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                idx = rng.integers(0, n, n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
        self._fitted = True
        return self

    def feature_importances(self) -> np.ndarray:
        """Mean-decrease-in-impurity importances averaged over trees —
        the interpretability hook the paper credits the forest with
        (which bit positions drive path sensitization)."""
        self._require_fitted()
        importances = np.zeros(self.n_features_)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        total = importances.sum()
        return importances / total if total else importances


class RandomForestRegressor(_BaseForest):
    """Mean-aggregated forest of CART regressors — TEVoT's delay model."""

    tree_class = DecisionTreeRegressor

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        # accumulate tree by tree instead of np.mean(axis=0): numpy
        # picks pairwise vs sequential summation by memory layout, so
        # the mean of a 1-row batch could differ in the last ulp from
        # the same row inside a larger batch.  Sequential accumulation
        # makes predictions independent of batch composition — the
        # serving layer relies on that for bit-exact parity.
        total = self.estimators_[0].predict(X).astype(np.float64, copy=True)
        for tree in self.estimators_[1:]:
            total += tree.predict(X)
        return total / len(self.estimators_)


class RandomForestClassifier(_BaseForest):
    """Majority-vote forest of CART classifiers (paper's "RFC")."""

    tree_class = DecisionTreeClassifier

    def fit(self, X, y):
        super().fit(X, y)
        self.classes_ = self.estimators_[0].classes_
        # trees may have seen different class subsets under bootstrap;
        # align on the union
        all_classes = np.unique(np.concatenate(
            [t.classes_ for t in self.estimators_]))
        self.classes_ = all_classes
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        total = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            cols = np.searchsorted(self.classes_, tree.classes_)
            total[:, cols] += proba
        return total / self.n_estimators

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
