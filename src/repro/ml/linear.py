"""Linear models: least-squares regression and logistic regression.

The paper's "LR" baseline learns a weight per feature — including each
input bit position — so the model captures which bit positions matter
for path sensitization but not their interactions (Sec. IV-B's stated
limitation, visible in Table II's accuracy gap vs the forest).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y


class LinearRegression(BaseEstimator):
    """Ordinary least squares via ``numpy.linalg.lstsq``."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        self.n_features_ = X.shape[1]
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = coef[:-1]
            self.intercept_ = float(coef[-1])
        else:
            self.coef_ = coef
            self.intercept_ = 0.0
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return X @ self.coef_ + self.intercept_


class LogisticRegression(BaseEstimator):
    """Binary logistic regression trained by full-batch gradient descent
    with L2 regularization and an adaptive step (backtracking halving)."""

    def __init__(self, lr: float = 0.5, n_iter: int = 300,
                 l2: float = 1e-4, tol: float = 1e-7) -> None:
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2
        self.tol = tol

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) > 2:
            raise ValueError("LogisticRegression is binary-only")
        if len(self.classes_) == 1:
            # degenerate but legal: constant predictor
            self.n_features_ = X.shape[1]
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 0.0
            self._constant = self.classes_[0]
            self._fitted = True
            return self
        self._constant = None
        target = (y == self.classes_[1]).astype(np.float64)
        self.n_features_ = X.shape[1]
        n = X.shape[0]
        w = np.zeros(X.shape[1])
        b = 0.0
        lr = self.lr
        prev_loss = np.inf
        for _ in range(self.n_iter):
            z = X @ w + b
            p = self._sigmoid(z)
            grad_w = X.T @ (p - target) / n + self.l2 * w
            grad_b = float((p - target).mean())
            w -= lr * grad_w
            b -= lr * grad_b
            # cheap adaptive control: if loss rose, halve the step
            eps = 1e-12
            loss = (-np.mean(target * np.log(p + eps)
                             + (1 - target) * np.log(1 - p + eps))
                    + 0.5 * self.l2 * float(w @ w))
            if loss > prev_loss:
                lr *= 0.5
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.coef_ = w
        self.intercept_ = b
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        p1 = self._sigmoid(self.decision_function(X))
        return np.stack([1.0 - p1, p1], axis=1)

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        if self._constant is not None:
            X = check_X(X, self.n_features_)
            return np.full(X.shape[0], self._constant)
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])
