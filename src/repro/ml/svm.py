"""Linear support vector machine (hinge loss, SGD with averaging).

The paper's SVM baseline is accurate but extremely slow to train/test
at 200 K samples (Table II) — a linear-SVM-by-SGD keeps the accuracy
character while the benches reproduce the relative cost story.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y


class LinearSVC(BaseEstimator):
    """Binary linear SVM trained with Pegasos-style SGD.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = less regularized).
    n_epochs:
        Full passes over the training data.
    batch_size:
        Minibatch size for each SGD step.
    """

    def __init__(self, C: float = 1.0, n_epochs: int = 10,
                 batch_size: int = 64,
                 random_state: Optional[int] = None) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.random_state = random_state

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) > 2:
            raise ValueError("LinearSVC is binary-only")
        self.n_features_ = X.shape[1]
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = 0.0
            self._constant = self.classes_[0]
            self._fitted = True
            return self
        self._constant = None
        sign = np.where(y == self.classes_[1], 1.0, -1.0)
        n = X.shape[0]
        lam = 1.0 / (self.C * n)
        rng = np.random.default_rng(self.random_state)
        w = np.zeros(X.shape[1])
        b = 0.0
        w_avg = np.zeros_like(w)
        b_avg = 0.0
        n_avg = 0
        step = 0
        for _epoch in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                step += 1
                idx = order[start:start + self.batch_size]
                eta = 1.0 / (lam * (step + 10.0))
                margin = sign[idx] * (X[idx] @ w + b)
                violators = margin < 1.0
                w *= (1.0 - eta * lam)
                if violators.any():
                    sub = idx[violators]
                    grad = (sign[sub][:, None] * X[sub]).mean(axis=0)
                    w += eta * grad
                    b += eta * float(sign[sub].mean())
                w_avg += w
                b_avg += b
                n_avg += 1
        self.coef_ = w_avg / max(1, n_avg)
        self.intercept_ = b_avg / max(1, n_avg)
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        if self._constant is not None:
            X = check_X(X, self.n_features_)
            return np.full(X.shape[0], self._constant)
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])
