"""Feature scaling utilities."""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_X


class StandardScaler(BaseEstimator):
    """Zero-mean, unit-variance scaling (constant columns pass through)."""

    def fit(self, X):
        X = check_X(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features into [0, 1] (constant columns map to 0)."""

    def fit(self, X):
        X = check_X(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        self.n_features_ = X.shape[1]
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return (X - self.min_) / self.span_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        return X * self.span_ + self.min_
