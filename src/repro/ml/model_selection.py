"""Train/test splitting and cross-validation."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from .metrics import accuracy_score, r2_score


def train_test_split(X, y, test_size: float = 0.25,
                     random_state: Optional[int] = None,
                     shuffle: bool = True):
    """Split arrays into train/test partitions.

    Returns ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y row counts differ")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = X.shape[0]
    n_test = max(1, int(round(n * test_size)))
    if n_test >= n:
        raise ValueError("test split would consume every sample")
    if shuffle:
        order = np.random.default_rng(random_state).permutation(n)
    else:
        order = np.arange(n)
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False,
                 random_state: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into "
                             f"{self.n_splits} folds")
        if self.shuffle:
            order = np.random.default_rng(self.random_state).permutation(n)
        else:
            order = np.arange(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits)
        fold_sizes[:n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = order[start:start + size]
            train = np.concatenate([order[:start], order[start + size:]])
            yield train, test
            start += size


def cross_val_score(estimator_factory, X, y, cv: int = 5,
                    scoring: str = "accuracy",
                    random_state: Optional[int] = None) -> List[float]:
    """Fit-and-score across folds.

    ``estimator_factory`` is a zero-argument callable returning a fresh
    estimator (avoids state leaking between folds).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scorer = {"accuracy": accuracy_score, "r2": r2_score}.get(scoring)
    if scorer is None:
        raise ValueError(f"unknown scoring {scoring!r}")
    scores = []
    for train_idx, test_idx in KFold(cv, shuffle=True,
                                     random_state=random_state).split(X):
        model = estimator_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return scores
