"""Shared estimator plumbing for the from-scratch ML library.

The paper uses scikit-learn; that is unavailable offline, so
:mod:`repro.ml` reimplements the four families it evaluates (LR, kNN,
SVM, random forest) with a compatible ``fit``/``predict`` interface.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def check_X_y(X, y) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and convert a training pair to float64/1-D arrays."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y


def check_X(X, n_features: Optional[int] = None) -> np.ndarray:
    """Validate and convert a prediction input."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if n_features is not None and X.shape[1] != n_features:
        raise ValueError(
            f"X has {X.shape[1]} features, model was fit with {n_features}")
    return X


class BaseEstimator:
    """Minimal base class: parameter introspection + fitted checks."""

    _fitted: bool = False

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} instance is not fitted yet")

    def get_params(self) -> dict:
        """Public constructor-style parameters (for reporting)."""
        return {
            k: v for k, v in vars(self).items()
            if not k.startswith("_") and not isinstance(v, np.ndarray)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(
            self.get_params().items()))
        return f"{type(self).__name__}({params})"


def resolve_max_features(max_features, n_features: int) -> int:
    """Interpret a ``max_features`` spec the way sklearn does."""
    if max_features is None or max_features == "all":
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValueError("integer max_features must be >= 1")
        return min(int(max_features), n_features)
    raise ValueError(f"unsupported max_features spec: {max_features!r}")
