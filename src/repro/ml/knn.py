"""Brute-force k-nearest-neighbours (chunked numpy distances).

The paper evaluates kNN as one of the four candidate methods (Table II):
decent accuracy but prohibitive testing time — a behaviour that brute
force reproduces faithfully.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y


class _BaseKNN(BaseEstimator):
    def __init__(self, n_neighbors: int = 5, chunk_size: int = 2048) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.chunk_size = chunk_size

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={X.shape[0]}")
        self._X = X
        self._y = y
        self.n_features_ = X.shape[1]
        self._train_sq = (X * X).sum(axis=1)
        self._fitted = True
        return self

    def _neighbor_indices(self, X: np.ndarray) -> np.ndarray:
        """Indices of the k nearest training rows per query row."""
        out = np.empty((X.shape[0], self.n_neighbors), dtype=np.int64)
        for start in range(0, X.shape[0], self.chunk_size):
            chunk = X[start:start + self.chunk_size]
            # squared euclidean distance via the expansion trick
            d2 = (self._train_sq[None, :]
                  - 2.0 * chunk @ self._X.T
                  + (chunk * chunk).sum(axis=1)[:, None])
            if self.n_neighbors < d2.shape[1]:
                idx = np.argpartition(d2, self.n_neighbors - 1, axis=1)
                out[start:start + chunk.shape[0]] = idx[:, :self.n_neighbors]
            else:
                out[start:start + chunk.shape[0]] = np.argsort(d2, axis=1)
        return out


class KNeighborsRegressor(_BaseKNN):
    """Mean of the k nearest targets ("local interpolation", Sec. IV-B)."""

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        neighbors = self._neighbor_indices(X)
        return self._y[neighbors].astype(np.float64).mean(axis=1)


class KNeighborsClassifier(_BaseKNN):
    """Majority vote of the k nearest labels."""

    def fit(self, X, y):
        super().fit(X, y)
        self.classes_, self._encoded = np.unique(self._y, return_inverse=True)
        return self

    def predict(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X, self.n_features_)
        neighbors = self._neighbor_indices(X)
        votes = self._encoded[neighbors]
        counts = np.apply_along_axis(
            np.bincount, 1, votes, minlength=len(self.classes_))
        return self.classes_[np.argmax(counts, axis=1)]
